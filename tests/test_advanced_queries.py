"""Advanced end-to-end queries: deeper patterns, mixed features."""

import itertools

import numpy as np
import pytest

from repro import Database
from tests.conftest import random_undirected_edges


def adjacency_of(edges):
    adjacency = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    return adjacency


@pytest.fixture(scope="module")
def edges():
    return random_undirected_edges(22, 110, seed=77)


@pytest.fixture(scope="module")
def db(edges):
    database = Database()
    database.load_graph("Edge", edges)
    return database


class TestDeepPatterns:
    def test_five_clique(self, edges):
        adjacency = adjacency_of(edges)
        expected = sum(
            1 for combo in itertools.combinations(sorted(adjacency), 5)
            if all(b in adjacency[a]
                   for a, b in itertools.combinations(combo, 2)))
        pruned = Database()
        pruned.load_graph("Edge", edges, prune=True)
        body = ",".join("Edge(%s,%s)" % (a, b) for a, b in
                        itertools.combinations("vwxyz", 2))
        got = pruned.query("K5(;c:long) :- %s; c=<<COUNT(*)>>." % body)
        assert got.scalar == expected

    def test_four_path_count(self, db, edges):
        adjacency = adjacency_of(edges)
        expected = 0
        for a in adjacency:
            for b in adjacency[a]:
                for c in adjacency[b]:
                    if c == a:
                        continue
                    expected += sum(1 for d in adjacency[c]
                                    if d != b)
        got = db.query("P4(;c:long) :- Edge(a,b),Edge(b,c),Edge(c,d); "
                       "c=<<COUNT(*)>>.").scalar
        # our datalog does not impose a != c or b != d: compute exactly
        raw = 0
        for a in adjacency:
            for b in adjacency[a]:
                for c in adjacency[b]:
                    raw += len(adjacency[c])
        assert got == raw

    def test_square_cycle(self, db, edges):
        adjacency = adjacency_of(edges)
        expected = 0
        for a in adjacency:
            for b in adjacency[a]:
                for c in adjacency[b]:
                    expected += sum(1 for d in adjacency[c]
                                    if a in adjacency[d])
        got = db.query("Sq(;c:long) :- Edge(a,b),Edge(b,c),Edge(c,d),"
                       "Edge(d,a); c=<<COUNT(*)>>.").scalar
        assert got == expected


class TestMixedFeatures:
    def test_selection_plus_aggregation(self, db, edges):
        adjacency = adjacency_of(edges)
        hub = max(adjacency, key=lambda n: len(adjacency[n]))
        got = db.query("HubTri(;c:long) :- Edge(%d,y),Edge(y,z),"
                       "Edge(%d,z); c=<<COUNT(*)>>." % (hub, hub)).scalar
        expected = sum(1 for y in adjacency[hub] for z in adjacency[y]
                       if z in adjacency[hub])
        assert got == expected

    def test_aggregate_feeding_selection(self, db):
        """A two-rule program: degree, then filter through a join."""
        db.query("Deg(x;d:int) :- Edge(x,y); d=<<COUNT(y)>>.")
        result = db.query("Q(x;d:float) :- Deg(x),Edge(x,y),Edge(y,x); "
                          "d=<<MAX(x)>>.")
        degrees = db.query(
            "D2(x;d:int) :- Edge(x,y); d=<<COUNT(y)>>.").to_dict()
        got = result.to_dict()
        assert got == pytest.approx(degrees)

    def test_program_chaining_across_queries(self, db, edges):
        db.query("Wedge(x,z) :- Edge(x,y),Edge(y,z).")
        reuse = db.query("W2(;c:long) :- Wedge(x,z),Edge(x,z); "
                         "c=<<COUNT(*)>>.").scalar
        adjacency = adjacency_of(edges)
        expected = 0
        for x in adjacency:
            wedge_ends = set()
            for y in adjacency[x]:
                wedge_ends |= adjacency[y]
            expected += len(wedge_ends & adjacency[x])
        assert reuse == expected

    def test_string_values_through_everything(self):
        names = ["u%d" % i for i in range(12)]
        edges = [(names[i], names[(i * 5 + 1) % 12]) for i in range(12)]
        edges += [(names[0], names[i]) for i in range(2, 8)]
        db = Database()
        db.load_graph("Edge", edges)
        result = db.query("N(x;d:int) :- Edge(x,y); d=<<COUNT(y)>>.")
        degrees = result.to_dict()
        assert set(degrees) <= set(names)
        assert degrees["u0"] >= 6

    def test_float_annotations_precision(self):
        db = Database()
        values = [0.1, 0.2, 0.3]
        db.add_encoded("W", [[0, 1], [0, 2], [0, 3]],
                       annotations=values)
        got = db.query("S(x;s:float) :- W(x,y); s=<<SUM(y)>>.").to_dict()
        assert got[0] == pytest.approx(sum(values))


class TestEmptyAndDegenerate:
    def test_query_on_empty_graph(self):
        db = Database()
        db.add_encoded("Edge", np.empty((0, 2), dtype=np.uint32))
        assert db.query("T(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                        "c=<<COUNT(*)>>.").scalar == 0.0
        assert db.query("Q(x,y) :- Edge(x,y).").count == 0

    def test_selection_matching_nothing(self, db):
        result = db.query("Q(y) :- Edge(99999,y).")
        assert result.count == 0

    def test_single_edge_patterns(self):
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1)], undirected=False)
        assert db.query("T(;c:long) :- Edge(x,y),Edge(y,z); "
                        "c=<<COUNT(*)>>.").scalar == 0.0
        assert db.query("C(;c:long) :- Edge(x,y); "
                        "c=<<COUNT(*)>>.").scalar == 1.0
