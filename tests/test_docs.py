"""Documentation consistency: docs must reference real code.

Guards against doc rot: every ``repro.*`` dotted path mentioned in the
README and docs/ must import, and every file path mentioned must exist.
"""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", ROOT / "DESIGN.md",
             *(ROOT / "docs").glob("*.md")]

MODULE_PATTERN = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
PATH_PATTERN = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_./-]+"
    r"\.(?:py|md))`")


def mentioned(pattern):
    found = set()
    for doc in DOC_FILES:
        for match in pattern.finditer(doc.read_text()):
            found.add((doc.name, match.group(1)))
    return sorted(found)


class TestDocReferences:
    def test_docs_exist(self):
        assert len(DOC_FILES) >= 5

    @pytest.mark.parametrize("doc,dotted", mentioned(MODULE_PATTERN))
    def test_dotted_paths_resolve(self, doc, dotted):
        parts = dotted.split(".")
        # Try as module; else as module.attribute.
        try:
            importlib.import_module(dotted)
            return
        except ImportError:
            pass
        module = importlib.import_module(".".join(parts[:-1]))
        assert hasattr(module, parts[-1]), "%s referenced in %s" % (
            dotted, doc)

    @pytest.mark.parametrize("doc,path", mentioned(PATH_PATTERN))
    def test_file_paths_exist(self, doc, path):
        assert (ROOT / path).exists(), "%s referenced in %s" % (path, doc)

    def test_readme_example_queries_parse(self):
        """Every datalog snippet quoted in the README must parse."""
        from repro.query import parse
        text = (ROOT / "README.md").read_text()
        snippets = re.findall(
            r'"((?:[A-Za-z][A-Za-z0-9]*\(.*?:-.*?)(?<!\\))"', text)
        for snippet in snippets:
            snippet = snippet.replace('" *\n *"', "")
            if ":-" in snippet and snippet.endswith("."):
                parse(snippet)
