"""Regression tests: MetricsRegistry and TelemetryHub under threads.

The query service (repro.serve) mutates one registry and one hub from
its asyncio event loop *and* its executor thread.  Before the locks
were added, ``Counter.inc`` was an unguarded read-modify-write and the
hub's sink/ring/sequence updates interleaved freely — dropped
increments and duplicate query ids under contention.  These tests
hammer both objects from many threads with a tiny switch interval and
assert exact totals.
"""

import sys
import threading

import pytest

from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS
from repro.obs.telemetry import (QUERY_LOG_VERSION, TelemetryHub,
                                 validate_query_record)

THREADS = 8
ROUNDS = 2000


@pytest.fixture
def fast_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def _run_threads(worker):
    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_registry_counter_increments_are_exact(fast_switching):
    registry = MetricsRegistry(enabled=True)

    def worker(index):
        for _ in range(ROUNDS):
            registry.inc("hammer.total")
            registry.inc("hammer.labeled",
                         labels={"thread": index % 2})

    _run_threads(worker)
    assert registry.counter("hammer.total").value == THREADS * ROUNDS
    labeled = (registry.counter("hammer.labeled",
                                labels={"thread": 0}).value
               + registry.counter("hammer.labeled",
                                  labels={"thread": 1}).value)
    assert labeled == THREADS * ROUNDS


def test_registry_histogram_count_sum_consistent(fast_switching):
    registry = MetricsRegistry(enabled=True)

    def worker(index):
        for round_index in range(ROUNDS):
            registry.observe("hammer.seconds",
                             0.001 * ((round_index % 7) + 1),
                             TIME_BUCKETS)

    _run_threads(worker)
    histogram = registry.histogram("hammer.seconds", TIME_BUCKETS)
    assert histogram.count == THREADS * ROUNDS
    assert sum(histogram.counts) == histogram.count
    expected_sum = THREADS * sum(0.001 * ((i % 7) + 1)
                                 for i in range(ROUNDS))
    assert histogram.total == pytest.approx(expected_sum, rel=1e-6)


def test_registry_merge_state_under_threads(fast_switching):
    registry = MetricsRegistry(enabled=True)
    source = MetricsRegistry(enabled=True)
    source.inc("merge.counter", 3)
    state = source.to_state()

    def worker(index):
        for _ in range(ROUNDS // 4):
            registry.merge_state(state)

    _run_threads(worker)
    expected = 3 * THREADS * (ROUNDS // 4)
    assert registry.counter("merge.counter").value == expected


def _record(hub, text_sha, mode="interpreted"):
    return {
        "schema_version": QUERY_LOG_VERSION,
        "query_id": hub.next_query_id(),
        "ts": 0.0,
        "pid": 1,
        "status": "ok",
        "text_sha": text_sha,
        "execution_mode": mode,
        "config_signature": "sig",
        "elapsed_seconds": 0.001,
        "rows": 1,
        "plan_cache": "hit",
        "result_cache": "miss",
        "queue_seconds": 0.0,
    }


def test_hub_record_query_from_threads(fast_switching, tmp_path):
    registry = MetricsRegistry(enabled=True)
    hub = TelemetryHub(directory=str(tmp_path), registry=registry)
    ids = [set() for _ in range(THREADS)]

    def worker(index):
        for _ in range(ROUNDS // 4):
            record = _record(hub, "sha-%d" % index)
            ids[index].add(record["query_id"])
            assert not validate_query_record(record)
            hub.record_query(record)

    _run_threads(worker)
    hub.close(dump_reason="test")
    total = THREADS * (ROUNDS // 4)
    assert hub.queries == total
    # No duplicate ids across threads: next_query_id is serialized.
    union = set()
    for bucket in ids:
        union |= bucket
    assert len(union) == total
    # Series folds are exact: every record counted once.
    folded = sum(c.value for c in registry.counters.values()
                 if c.name == "telemetry.queries")
    assert folded == total
    tiers = sum(c.value for c in registry.counters.values()
                if c.name == "telemetry.result_cache")
    assert tiers == total
    # The sink saw every record (one JSON line each).
    from repro.obs.telemetry import read_query_log
    assert len(read_query_log(str(tmp_path / "queries.jsonl"))) == total


def test_hub_mixed_surfaces_from_threads(fast_switching):
    # Memory-only hub: record_query racing snapshot() and should_trace()
    # must neither crash nor lose counts.
    registry = MetricsRegistry(enabled=True)
    hub = TelemetryHub(directory=None, registry=registry,
                       slow_query_seconds=10.0)

    def worker(index):
        for _ in range(ROUNDS // 8):
            if index % 3 == 2:
                hub.snapshot()
                hub.should_trace("sha-%d" % index)
            else:
                hub.record_query(_record(hub, "sha-%d" % index))

    _run_threads(worker)
    writers = sum(1 for i in range(THREADS) if i % 3 != 2)
    assert hub.queries == writers * (ROUNDS // 8)
