"""Telemetry pipeline: query log, hub aggregation, promotion, top."""

import json
import os

import pytest

from repro import Database
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (QUERY_LOG_VERSION, RotatingJsonlSink,
                                 TelemetryHub, key_digest,
                                 read_query_log, render_top,
                                 text_digest, validate_query_log,
                                 validate_query_record)
from repro.obs.telemetry import main as telemetry_main

from tests.conftest import random_undirected_edges

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")


def make_record(index=0, **overrides):
    record = {
        "schema_version": QUERY_LOG_VERSION,
        "query_id": "q%08d-1" % (index + 1),
        "ts": 1000.0 + index,
        "pid": os.getpid(),
        "status": "ok",
        "text_sha": text_digest("q%d" % index),
        "text": "q%d" % index,
        "execution_mode": "compiled",
        "config_signature": key_digest(("sig",)),
        "elapsed_seconds": 0.01 * (index + 1),
        "rows": 5,
        "plan_cache": "hit",
    }
    record.update(overrides)
    return record


class TestSchema:
    def test_valid_record_passes(self):
        assert validate_query_record(make_record()) == []

    def test_missing_required_field_is_reported(self):
        record = make_record()
        del record["query_id"]
        assert any("query_id" in p for p in
                   validate_query_record(record))

    def test_wrong_type_is_reported(self):
        record = make_record(rows="many")
        assert any("rows" in p for p in validate_query_record(record))

    def test_unknown_field_is_reported(self):
        record = make_record(surprise=1)
        assert any("surprise" in p for p in
                   validate_query_record(record))

    def test_inflight_form_may_omit_post_execution_fields(self):
        record = make_record(status="inflight")
        del record["elapsed_seconds"]
        del record["rows"]
        assert validate_query_record(record, inflight=True) == []
        assert validate_query_record(record) != []

    def test_unknown_status_and_version(self):
        assert validate_query_record(make_record(status="odd"))
        assert validate_query_record(make_record(schema_version=99))

    def test_validate_query_log_counts_and_flags(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(make_record(0)) + "\n")
            handle.write("not json\n")
            handle.write(json.dumps(make_record(2, rows=None)) + "\n")
        count, problems = validate_query_log(str(path))
        assert count == 2
        assert any("line 2" in p for p in problems)
        assert any("line 3" in p for p in problems)

    def test_cli_validator(self, tmp_path, capsys):
        path = tmp_path / "queries.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(make_record()) + "\n")
        assert telemetry_main([str(path)]) == 0
        assert "valid query log" in capsys.readouterr().out
        with open(path, "w") as handle:
            handle.write("{}\n")
        assert telemetry_main([str(path)]) == 1


class TestRotatingSink:
    def test_appends_one_line_per_record(self, tmp_path):
        sink = RotatingJsonlSink(str(tmp_path / "q.jsonl"))
        sink.append({"a": 1})
        sink.append({"a": 2})
        sink.close()
        lines = open(tmp_path / "q.jsonl").read().splitlines()
        assert [json.loads(line)["a"] for line in lines] == [1, 2]

    def test_rotates_at_size_and_drops_past_backups(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        sink = RotatingJsonlSink(path, max_bytes=64, backups=2)
        for index in range(40):
            sink.append(make_record(index))
        sink.close()
        names = sorted(os.listdir(tmp_path))
        assert names == ["q.jsonl", "q.jsonl.1", "q.jsonl.2"]

    def test_read_query_log_walks_rotation_oldest_first(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        sink = RotatingJsonlSink(path, max_bytes=600, backups=5)
        for index in range(12):
            sink.append(make_record(index))
        sink.close()
        records = read_query_log(path)
        ids = [record["query_id"] for record in records]
        assert ids == sorted(ids)
        assert len(ids) == 12
        assert read_query_log(path, limit=3) == records[-3:]


class TestHub:
    def test_record_query_aggregates_labeled_series(self):
        hub = TelemetryHub()
        hub.record_query(make_record(0, execution_mode="compiled"))
        hub.record_query(make_record(1, execution_mode="interpreted",
                                     plan_cache="miss"))
        snap = hub.registry.snapshot()
        counters = snap["counters"]
        assert counters["telemetry.queries{mode=compiled,status=ok}"] \
            == 1
        assert counters[
            "telemetry.queries{mode=interpreted,status=ok}"] == 1
        assert counters["telemetry.plan_cache{tier=hit}"] == 1
        assert counters["telemetry.plan_cache{tier=miss}"] == 1
        assert snap["histograms"][
            "telemetry.query_seconds{mode=compiled}"]["count"] == 1
        assert hub.queries == 2

    def test_snapshot_reports_uptime_and_qps(self):
        hub = TelemetryHub()
        hub.record_query(make_record())
        snap = hub.snapshot()
        assert snap["queries"] == 1
        assert snap["uptime_seconds"] > 0
        assert snap["qps"] > 0

    def test_slow_query_promotion_flags_identity_once(self):
        hub = TelemetryHub(slow_query_seconds=0.05)
        fast = make_record(0, elapsed_seconds=0.01)
        hub.record_query(fast)
        assert not hub.should_trace(fast["text_sha"])
        slow = make_record(1, elapsed_seconds=0.2)
        hub.record_query(slow)
        assert hub.should_trace(slow["text_sha"])
        counters = hub.registry.snapshot()["counters"]
        assert counters["telemetry.slow_queries"] == 1

    def test_archive_trace_unflags_and_never_repromotes(self):
        from repro.obs.trace import Tracer
        hub = TelemetryHub(slow_query_seconds=0.05)
        slow = make_record(0, elapsed_seconds=0.2)
        hub.record_query(slow)
        tracer = Tracer()
        with tracer.span("query"):
            pass
        assert hub.archive_trace(tracer, slow) is None  # memory-only
        assert not hub.should_trace(slow["text_sha"])
        hub.record_query(make_record(1, elapsed_seconds=0.2,
                                     text_sha=slow["text_sha"]))
        assert not hub.should_trace(slow["text_sha"])  # archived once

    def test_fail_query_records_error_and_dumps(self, tmp_path):
        hub = TelemetryHub(directory=str(tmp_path))
        record = make_record(status="inflight")
        hub.begin_query(record)
        hub.fail_query(record, ValueError("boom"))
        assert (tmp_path / "postmortem.json").exists()
        counters = hub.registry.snapshot()["counters"]
        assert counters[
            "telemetry.queries{mode=compiled,status=error}"] == 1
        logged = read_query_log(str(tmp_path / "queries.jsonl"))
        assert logged[-1]["status"] == "error"
        assert "boom" in logged[-1]["error"]

    def test_absorb_state_labels_per_query_registries(self):
        hub = TelemetryHub()
        per_query = MetricsRegistry()
        per_query.inc("intersections", 4)
        hub.absorb_state(per_query.to_state(), labels={"db": "g1"})
        counters = hub.registry.snapshot()["counters"]
        assert counters["intersections{db=g1}"] == 4

    def test_close_is_idempotent_and_writes_exposition(self, tmp_path):
        hub = TelemetryHub(directory=str(tmp_path))
        hub.record_query(make_record())
        hub.close()
        hub.close()
        assert (tmp_path / "metrics.prom").exists()
        assert (tmp_path / "postmortem.json").exists()


class TestRenderTop:
    def test_windows_and_sections(self):
        records = [make_record(index, morsels=8, steals=2, workers=4,
                               fused_blocks=3) for index in range(10)]
        frame = render_top(records, now=1010.0, window=60.0)
        assert "qps" in frame and "p95" in frame
        assert "plan cache" in frame and "hit rate 100%" in frame
        assert "lanes" in frame and "steals" in frame
        assert "slowest" in frame

    def test_empty_log(self):
        assert "empty" in render_top([])

    def test_stale_records_fall_back_to_all_time(self):
        records = [make_record(0)]
        frame = render_top(records, now=99999.0, window=60.0)
        assert "all time" in frame


class TestDatabaseIntegration:
    @pytest.fixture
    def db(self, tmp_path):
        database = Database(execution_mode="compiled")
        database.load_graph(
            "Edge", random_undirected_edges(30, 90, seed=3), prune=True)
        database.enable_telemetry(directory=str(tmp_path))
        return database

    def test_every_query_appends_a_valid_record(self, db, tmp_path):
        db.query(TRIANGLES)
        db.query(TRIANGLES)
        db.disable_telemetry()
        count, problems = validate_query_log(
            str(tmp_path / "queries.jsonl"))
        assert problems == []
        assert count == 2
        records = read_query_log(str(tmp_path / "queries.jsonl"))
        first, second = records
        assert first["plan_cache"] == "miss"
        assert second["plan_cache"] == "hit"
        assert second["cache_key"] == first["cache_key"]
        assert second["rows"] == 1
        assert second["status"] == "ok"

    def test_off_by_default_and_disable_detaches(self, tmp_path):
        db = Database()
        assert db.config.telemetry is None
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)])
        db.enable_telemetry(directory=str(tmp_path))
        db.query(TRIANGLES)
        db.disable_telemetry()
        db.query(TRIANGLES)
        records = read_query_log(str(tmp_path / "queries.jsonl"))
        assert len(records) == 1

    def test_promotion_archives_a_chrome_trace(self, db, tmp_path):
        db.telemetry.slow_query_seconds = 0.0  # everything is slow
        db.query(TRIANGLES)                    # flags the identity
        db.query(TRIANGLES)                    # runs traced + archives
        records = read_query_log(str(tmp_path / "queries.jsonl"))
        promoted = [r for r in records if r.get("promoted")]
        assert len(promoted) == 1
        assert promoted[0]["phases"]
        trace_path = promoted[0]["trace_path"]
        assert os.path.exists(trace_path)
        from repro.obs.export import validate_chrome_trace
        with open(trace_path) as handle:
            assert validate_chrome_trace(json.load(handle)) == []
        # tracing was private to the promoted run
        assert db.config.tracer is None

    def test_failed_query_is_logged_and_dumped(self, db, tmp_path):
        with pytest.raises(Exception):
            db.query("Bad(x) :- Missing(x,y).")
        records = read_query_log(str(tmp_path / "queries.jsonl"))
        assert records[-1]["status"] == "error"
        assert (tmp_path / "postmortem.json").exists()

    def test_hub_shares_the_metrics_registry(self, db):
        # Telemetry alone keeps config.metrics None (hot paths free)
        # but still writes telemetry.* series into db.metrics; with
        # metrics also on, one registry carries both families.
        db.query(TRIANGLES)
        counters = db.metrics.snapshot()["counters"]
        assert any(key.startswith("telemetry.queries")
                   for key in counters)
        assert "plan_cache.lookups{tier=miss}" not in counters
        db.enable_metrics()
        db.query(TRIANGLES)
        counters = db.metrics.snapshot()["counters"]
        assert counters["plan_cache.lookups{tier=hit}"] == 1
        assert db.telemetry.registry is db.metrics

    def test_env_var_enables_memory_hub(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        db = Database()
        assert db.telemetry is not None
        assert db.telemetry.directory is None
        assert db.config.telemetry is db.telemetry
