"""OpenMetrics exposition: rendering, strict validation, scraping."""

import math
import urllib.request

from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS
from repro.obs.openmetrics import (metric_name, render_openmetrics,
                                   serve_metrics, validate_openmetrics,
                                   write_openmetrics)
from repro.obs.openmetrics import main as openmetrics_main


def populated_registry():
    registry = MetricsRegistry()
    registry.inc("cache.plan.hits", 3)
    registry.inc("telemetry.queries", 2,
                 labels={"mode": "compiled", "status": "ok"})
    registry.inc("telemetry.queries",
                 labels={"mode": "interpreted", "status": "ok"})
    registry.set_gauge("parallel.workers", 4)
    for value in (0.001, 0.01, 0.01, 0.5):
        registry.observe("telemetry.query_seconds", value, TIME_BUCKETS,
                         labels={"mode": "compiled"})
    return registry


class TestRender:
    def test_exposition_is_strictly_valid(self):
        text = render_openmetrics(populated_registry())
        assert validate_openmetrics(text) == []

    def test_counter_samples_use_total_suffix(self):
        text = render_openmetrics(populated_registry())
        assert "repro_cache_plan_hits_total 3" in text
        assert '_total{mode="compiled",status="ok"} 2' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1, 4, 16))
        for value in (0, 3, 100):
            histogram.observe(value)
        text = render_openmetrics(registry)
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_h_bucket")]
        values = [float(line.split()[-1]) for line in lines]
        assert values == sorted(values)           # cumulative
        assert 'le="+Inf"' in lines[-1]
        assert values[-1] == 3
        assert "repro_h_sum 103" in text
        assert "repro_h_count 3" in text

    def test_quantile_family_per_histogram(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE repro_telemetry_query_seconds_quantile gauge" \
            in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.99"' in text

    def test_metadata_and_eof(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE repro_cache_plan_hits counter" in text
        assert "# HELP repro_cache_plan_hits" in text
        assert text.endswith("# EOF\n")

    def test_name_sanitization(self):
        assert metric_name("cache.plan.hits") == "repro_cache_plan_hits"
        assert metric_name("a-b c") == "repro_a_b_c"

    def test_empty_registry_renders_valid(self):
        text = render_openmetrics(MetricsRegistry())
        assert validate_openmetrics(text) == []

    def test_inf_and_empty_histogram_min_max(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1,))  # never observed
        text = render_openmetrics(registry)
        assert validate_openmetrics(text) == []
        assert math.inf not in [None]  # exposition stays parseable


class TestValidator:
    def test_rejects_missing_eof(self):
        assert any("EOF" in p for p in
                   validate_openmetrics("# TYPE a counter\na_total 1\n"))

    def test_rejects_sample_without_type(self):
        text = "orphan 1\n# EOF\n"
        assert any("no # TYPE" in p for p in validate_openmetrics(text))

    def test_rejects_counter_without_total(self):
        text = "# TYPE a counter\na 1\n# EOF\n"
        assert any("_total" in p for p in validate_openmetrics(text))

    def test_rejects_interleaved_families(self):
        text = ("# TYPE a counter\na_total 1\n"
                "# TYPE b counter\nb_total 1\n"
                "a_total{x=\"1\"} 2\n# EOF\n")
        assert any("interleaved" in p for p in
                   validate_openmetrics(text))

    def test_rejects_duplicate_series(self):
        text = "# TYPE a counter\na_total 1\na_total 2\n# EOF\n"
        assert any("duplicate series" in p for p in
                   validate_openmetrics(text))

    def test_rejects_noncumulative_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                "h_sum 9\nh_count 3\n# EOF\n")
        assert any("not cumulative" in p for p in
                   validate_openmetrics(text))

    def test_rejects_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n# EOF\n')
        assert any("+Inf" in p for p in validate_openmetrics(text))

    def test_rejects_count_bucket_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\nh_sum 9\nh_count 4\n# EOF\n')
        assert any("_count" in p for p in validate_openmetrics(text))

    def test_rejects_bad_values_and_labels(self):
        assert validate_openmetrics(
            "# TYPE g gauge\ng wat\n# EOF\n")
        assert validate_openmetrics(
            "# TYPE g gauge\ng{bad-label=\"1\"} 1\n# EOF\n")


class TestFileAndServer:
    def test_write_and_cli_validate(self, tmp_path, capsys):
        path = str(tmp_path / "metrics.prom")
        write_openmetrics(populated_registry(), path)
        assert openmetrics_main([path]) == 0
        assert "valid OpenMetrics" in capsys.readouterr().out
        with open(path, "w") as handle:
            handle.write("junk &&&\n")
        assert openmetrics_main([path]) == 1

    def test_scrape_endpoint_serves_live_registry(self):
        registry = populated_registry()
        server = serve_metrics(registry, port=0)
        try:
            port = server.server_address[1]
            url = "http://127.0.0.1:%d/metrics" % port
            with urllib.request.urlopen(url) as response:
                assert response.status == 200
                assert "openmetrics-text" in \
                    response.headers["Content-Type"]
                body = response.read().decode("utf-8")
            assert validate_openmetrics(body) == []
            registry.inc("cache.plan.hits")  # live: next scrape sees it
            with urllib.request.urlopen(url) as response:
                fresh = response.read().decode("utf-8")
            assert "repro_cache_plan_hits_total 4" in fresh
            code = urllib.request.urlopen(url.replace(
                "/metrics", "/nope"))
        except urllib.error.HTTPError as error:
            assert error.code == 404
        finally:
            server.shutdown()
            server.server_close()

    def test_database_write_and_serve(self, tmp_path):
        from repro import Database
        db = Database()
        db.enable_metrics()
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)])
        db.query("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                 "w=<<COUNT(*)>>.")
        path = db.write_metrics(str(tmp_path / "db.prom"))
        with open(path) as handle:
            assert validate_openmetrics(handle.read()) == []
