"""Flight recorder: rings, in-flight journal, post-mortem assembly."""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.obs.flight import (FlightRecorder, INFLIGHT_FILE,
                              POSTMORTEM_FILE, post_mortem,
                              read_inflight, validate_post_mortem)
from repro.obs.flight import main as flight_main
from repro.obs.trace import Tracer

from tests.obs.test_telemetry import make_record


class TestRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.complete(make_record(index))
        assert len(recorder.records) == 3
        assert recorder.records[-1]["query_id"] == \
            make_record(9)["query_id"]

    def test_begin_journals_inflight_record(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        record = make_record(status="inflight")
        recorder.begin(record)
        journal = read_inflight(str(tmp_path))
        assert journal["query_id"] == record["query_id"]
        recorder.complete(record)
        # cleared = truncated to empty, not removed (the journal keeps
        # one persistent fd for cheap per-query rewrites)
        assert (tmp_path / INFLIGHT_FILE).read_bytes() == b""
        assert read_inflight(str(tmp_path)) is None
        assert recorder.inflight is None
        recorder.close()

    def test_journal_first_line_wins_after_longer_record(self, tmp_path):
        # a shorter record written over a longer one leaves a stale
        # tail in the file; first-line-wins reading must ignore it
        recorder = FlightRecorder(str(tmp_path))
        recorder.begin(make_record(0, text="long " * 50,
                                   status="inflight"))
        short = make_record(1, status="inflight")
        recorder.begin(short)
        assert read_inflight(str(tmp_path))["query_id"] == \
            short["query_id"]
        recorder.complete(short)
        assert read_inflight(str(tmp_path)) is None
        recorder.close()

    def test_fail_marks_error_and_keeps_last_error(self):
        recorder = FlightRecorder()
        record = make_record(status="inflight")
        recorder.begin(record)
        failed = recorder.fail(record, ValueError("boom"))
        assert failed["status"] == "error"
        assert "boom" in failed["error"]
        assert "boom" in recorder.last_error

    def test_note_spans_rebases_and_bounds(self):
        recorder = FlightRecorder(span_capacity=2)
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        recorder.note_spans(list(tracer.spans), tracer.t0)
        assert len(recorder.spans) == 2
        assert all(span["start"] >= 0 for span in recorder.spans)

    def test_dump_payload_shape(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        recorder.complete(make_record())
        path = recorder.dump(reason="test")
        payload = json.load(open(path))
        assert validate_post_mortem(payload) == []
        assert payload["reason"] == "test"
        assert len(payload["records"]) == 1

    def test_memory_only_dump_returns_none(self):
        assert FlightRecorder().dump() is None


class TestPostMortem:
    def test_empty_directory_yields_none(self, tmp_path):
        assert post_mortem(str(tmp_path)) is None

    def test_surviving_journal_synthesizes_killed_payload(self,
                                                          tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        record = make_record(status="inflight")
        del record["elapsed_seconds"], record["rows"]
        recorder.begin(record)
        # no dump ran (simulated SIGKILL): only inflight.json survives
        payload = post_mortem(str(tmp_path))
        assert payload["reason"] == "killed"
        assert payload["inflight"]["query_id"] == record["query_id"]
        assert validate_post_mortem(payload) == []

    def test_journal_overrides_stale_dump(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        recorder.complete(make_record(0))
        recorder.dump(reason="atexit")  # clean exit of a previous run
        stranded = make_record(1, status="inflight")
        del stranded["elapsed_seconds"], stranded["rows"]
        recorder.begin(stranded)
        payload = post_mortem(str(tmp_path))
        assert payload["reason"] == "killed"
        assert payload["inflight"]["query_id"] == stranded["query_id"]

    def test_cli_renders_and_validates(self, tmp_path, capsys):
        recorder = FlightRecorder(str(tmp_path))
        recorder.complete(make_record())
        recorder.dump(reason="atexit")
        assert flight_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "reason=atexit" in out
        assert flight_main([str(tmp_path / "nope")]) == 1


class TestKillMidQuery:
    def test_sigkill_leaves_valid_post_mortem_with_inflight(self,
                                                            tmp_path):
        """Acceptance: SIGKILL mid-query (no handler runs) must leave a
        valid post-mortem naming the in-flight query."""
        directory = str(tmp_path)
        script = textwrap.dedent("""
            import os, sys
            from repro import Database
            from tests.conftest import random_undirected_edges
            db = Database()
            db.load_graph("Edge",
                          random_undirected_edges(150, 4000, seed=1),
                          prune=True)
            db.enable_telemetry(directory=sys.argv[1])
            print("READY", flush=True)
            # ~2.5s per execution with sub-ms gaps between loop
            # iterations: the parent's SIGKILL lands mid-query
            while True:
                db.query("F(;w:long) :- Edge(a,b),Edge(a,c),"
                         "Edge(a,d),Edge(b,c),Edge(b,d),Edge(c,d); "
                         "w=<<COUNT(*)>>.")
        """)
        repo = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", ".."))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo, "src"), repo,
             env.get("PYTHONPATH", "")])
        process = subprocess.Popen(
            [sys.executable, "-c", script, directory],
            stdout=subprocess.PIPE, env=env)
        try:
            assert process.stdout.readline().strip() == b"READY"
            deadline = time.time() + 30
            # the journal file exists (empty) from hub creation; wait
            # until it actually names an in-flight query
            while read_inflight(directory) is None:
                assert time.time() < deadline, "no in-flight journal"
                time.sleep(0.005)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert not os.path.exists(
            os.path.join(directory, POSTMORTEM_FILE))  # no handler ran
        payload = post_mortem(directory)
        assert payload is not None
        assert validate_post_mortem(payload) == []
        assert payload["reason"] == "killed"
        inflight_record = payload["inflight"]
        assert inflight_record["status"] == "inflight"
        assert inflight_record["pid"] == process.pid
        assert "Edge(a,b)" in inflight_record["text"]
        # the validator CLI agrees
        assert flight_main([directory]) == 0
