"""EXPLAIN ANALYZE: plan rendering with actuals and cost-model error."""

import pytest

import repro.sets.cost
from repro import Database
from repro.graphs.patterns import BARBELL_COUNT, TRIANGLE_COUNT
from repro.obs.explain import predict_bag_ops

from tests.conftest import random_undirected_edges


def database(mode="interpreted", **overrides):
    db = Database(execution_mode=mode, **overrides)
    db.load_graph("Edge", random_undirected_edges(30, 90, seed=3),
                  prune=True)
    return db


class TestSingleBag:
    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_triangle_report_structure(self, mode):
        db = database(mode)
        report = db.explain_analyze(TRIANGLE_COUNT)
        assert report.startswith("EXPLAIN ANALYZE")
        assert "execution mode: %s" % mode in report
        assert "phases:" in report
        assert "GHD plan" in report
        assert "bag 0:" in report
        assert "layouts:" in report
        assert "actual:" in report
        assert "predicted:" in report and "repro.sets.cost" in report
        assert "cost-model error:" in report
        assert "result: 1 tuple(s)" in report

    def test_compiled_report_shows_pipeline_counters(self):
        db = database("compiled")
        report = db.explain_analyze(TRIANGLE_COUNT)
        assert "compiled pipeline:" in report
        assert "codegen" in report

    def test_result_still_installed(self):
        db = database()
        db.explain_analyze(TRIANGLE_COUNT)
        assert "TriangleCount" in db.catalog


class TestMultiBag:
    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_barbell_reports_every_bag(self, mode):
        db = database(mode)
        report = db.explain_analyze(BARBELL_COUNT)
        assert "bag 0:" in report
        assert "bag 1:" in report
        assert "bag 2:" in report
        # Each executed bag carries its own actuals line.
        assert report.count("actual:") >= 2


class TestPredictionProvenance:
    def test_prediction_comes_from_sets_cost_module(self, monkeypatch):
        """The predicted ops must flow through
        repro.sets.cost.predict_intersection_ops, not an ad-hoc copy."""
        monkeypatch.setattr(
            repro.sets.cost, "predict_intersection_ops",
            lambda cards, simd=True, crossover=None: 424242)
        db = database()
        report = db.explain_analyze(TRIANGLE_COUNT)
        (line,) = [l for l in report.splitlines() if "predicted:" in l]
        predicted = int(line.split("predicted:")[1].split()[0])
        # The per-level predictions are summed weighted by prefix
        # counts, so the sentinel must divide the reported total.
        assert predicted > 0
        assert predicted % 424242 == 0

    def test_predict_bag_ops_uses_profiles(self):
        profiles = [
            {"name": "Edge", "variables": ("x", "y"), "root_card": 10,
             "cardinality": 40, "kind": "uint"},
            {"name": "Edge", "variables": ("y", "z"), "root_card": 10,
             "cardinality": 40, "kind": "uint"},
            {"name": "Edge", "variables": ("x", "z"), "root_card": 10,
             "cardinality": 40, "kind": "uint"},
        ]
        predicted = predict_bag_ops(("x", "y", "z"), profiles, simd=True)
        assert predicted > 0

    def test_error_ratio_is_computed(self):
        db = database()
        report = db.explain_analyze(TRIANGLE_COUNT)
        (line,) = [l for l in report.splitlines()
                   if "cost-model error:" in l]
        ratio = float(line.split(":")[1].strip().split("x")[0])
        assert ratio > 0


class TestCostPrediction:
    def test_pair_prediction_formulas(self):
        cost = repro.sets.cost
        # scalar merge: small + large
        assert cost.predict_pair_ops(10, 20, simd=False) == 30
        # scalar galloping beyond the crossover
        large = 10 * cost.GALLOPING_CROSSOVER + 1
        expected = 10 * cost._log2_ceil(large)
        assert cost.predict_pair_ops(10, large, simd=False) == expected
        # empty side costs nothing
        assert cost.predict_pair_ops(0, 50) == 0

    def test_intersection_prediction_folds_left(self):
        cost = repro.sets.cost
        assert cost.predict_intersection_ops((8,)) == 0
        pair = cost.predict_pair_ops(8, 16)
        assert cost.predict_intersection_ops((16, 8)) == pair
        three = cost.predict_intersection_ops((16, 8, 64))
        assert three >= pair
