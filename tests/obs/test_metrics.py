"""Metrics registry: instruments, snapshot/reset, query absorption."""

import pytest

from repro import Database
from repro.engine.stats import ExecStats
from repro.obs.metrics import (Histogram, MetricsRegistry, SIZE_BUCKETS,
                               TIME_BUCKETS)

from tests.conftest import random_undirected_edges

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")


class TestInstruments:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_gauge("g", 7)
        registry.observe("h", 3)
        registry.observe("h", 100)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == 3
        assert snap["histograms"]["h"]["max"] == 100
        assert snap["histograms"]["h"]["mean"] == pytest.approx(51.5)

    def test_histogram_buckets_cover_range(self):
        histogram = Histogram("h", buckets=(1, 4, 16))
        for value in (0, 1, 2, 5, 1000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["buckets"]["<=1"] == 2
        assert snap["buckets"]["<=4"] == 1
        assert snap["buckets"]["<=16"] == 1
        assert snap["buckets"]["inf"] == 1

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.set_gauge("g", 1)
        registry.observe("h", 1)
        registry.record_exec_stats(ExecStats())
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_describe_lists_instruments(self):
        registry = MetricsRegistry()
        registry.inc("queries", 2)
        text = registry.describe()
        assert text.startswith("metrics:")
        assert "queries" in text

    def test_time_and_size_buckets_are_increasing(self):
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)
        assert list(TIME_BUCKETS) == sorted(TIME_BUCKETS)

    def test_snapshot_emits_full_bucket_list(self):
        # Empty buckets must appear: the bucket schema may not change
        # shape between snapshots of the same histogram (diffing and
        # OpenMetrics exposition rely on it).
        histogram = Histogram("h", buckets=(1, 4, 16))
        before = histogram.snapshot()["buckets"]
        assert list(before) == ["<=1", "<=4", "<=16", "inf"]
        assert all(count == 0 for count in before.values())
        histogram.observe(2)
        after = histogram.snapshot()["buckets"]
        assert list(after) == list(before)
        assert after["<=4"] == 1 and after["<=1"] == 0

    def test_quantile_interpolates_and_clamps(self):
        histogram = Histogram("h", buckets=(10, 20, 40))
        assert histogram.quantile(0.5) is None
        for value in (5, 15, 15, 35):
            histogram.observe(value)
        p50 = histogram.quantile(0.5)
        assert 10 <= p50 <= 20
        assert histogram.quantile(0.99) <= 35  # clamped to observed max
        assert histogram.quantile(0.01) >= 5

    def test_histogram_merge_matching_buckets(self):
        a = Histogram("h", buckets=(1, 4, 16))
        b = Histogram("h", buckets=(1, 4, 16))
        for value in (0, 3):
            a.observe(value)
        for value in (5, 100):
            b.observe(value)
        a.merge(b.counts, b.total, b.count, b.minimum, b.maximum,
                buckets=b.buckets)
        assert a.count == 4
        assert a.maximum == 100
        assert a.snapshot()["buckets"]["inf"] == 1

    def test_histogram_merge_rebuckets_foreign_bounds(self):
        a = Histogram("h", buckets=(1, 4, 16))
        b = Histogram("h", buckets=(2, 8))
        b.observe(2)   # <=2 -> rebuckets at bound 2 -> <=4
        b.observe(7)   # <=8 -> rebuckets at bound 8 -> <=16
        a.merge(b.counts, b.total, b.count, b.minimum, b.maximum,
                buckets=b.buckets)
        snap = a.snapshot()["buckets"]
        assert snap["<=4"] == 1 and snap["<=16"] == 1
        assert a.count == 2


class TestLabels:
    def test_labeled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.inc("queries", labels={"mode": "compiled"})
        registry.inc("queries", 2, labels={"mode": "interpreted"})
        registry.inc("queries")  # unlabeled sibling keeps its own series
        snap = registry.snapshot()["counters"]
        assert snap["queries{mode=compiled}"] == 1
        assert snap["queries{mode=interpreted}"] == 2
        assert snap["queries"] == 1

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.inc("x", labels={"b": "2", "a": "1"})
        registry.inc("x", labels={"a": "1", "b": "2"})
        assert registry.snapshot()["counters"]["x{a=1,b=2}"] == 2

    def test_instruments_keep_structured_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labels={"tier": "hit"})
        assert counter.name == "c"
        assert counter.labels == (("tier", "hit"),)
        histogram = registry.histogram("h", labels={"mode": "fused"})
        assert histogram.labels == (("mode", "fused"),)


class TestStateTransport:
    def test_to_state_merge_state_roundtrip(self):
        source = MetricsRegistry()
        source.inc("c", 3)
        source.set_gauge("g", 9)
        source.observe("h", 5, buckets=(1, 4, 16))
        target = MetricsRegistry()
        target.inc("c", 1)
        target.merge_state(source.to_state())
        snap = target.snapshot()
        assert snap["counters"]["c"] == 4
        assert snap["gauges"]["g"] == 9
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_state_adds_labels(self):
        source = MetricsRegistry()
        source.inc("intersections", 7)
        source.observe("h", 2, buckets=(1, 4))
        target = MetricsRegistry()
        target.merge_state(source.to_state(),
                           labels={"lane": "worker-1"})
        snap = target.snapshot()
        assert snap["counters"]["intersections{lane=worker-1}"] == 7
        assert snap["histograms"]["h{lane=worker-1}"]["count"] == 1

    def test_merge_state_incoming_labels_win(self):
        source = MetricsRegistry()
        source.inc("c", labels={"lane": "own"})
        target = MetricsRegistry()
        target.merge_state(source.to_state(), labels={"lane": "added"})
        assert target.snapshot()["counters"]["c{lane=own}"] == 1

    def test_merge_state_respects_enabled(self):
        source = MetricsRegistry()
        source.inc("c")
        target = MetricsRegistry(enabled=False)
        target.merge_state(source.to_state())
        assert target.snapshot()["counters"] == {}

    def test_state_is_json_safe(self):
        import json
        registry = MetricsRegistry()
        registry.inc("c", labels={"mode": "x"})
        registry.observe("h", 3)
        assert json.loads(json.dumps(registry.to_state()))


class TestExecStatsAbsorption:
    def test_morsel_histograms_and_counters(self):
        stats = ExecStats(workers=2, mode="forked")
        stats.record_morsel(0, 0, 10, 1.0, 0.01, lane_ops=50)
        stats.record_morsel(1, 1, 10, 1.0, 0.02, lane_ops=70,
                            stolen=True)
        registry = MetricsRegistry()
        registry.record_exec_stats(stats)
        snap = registry.snapshot()
        assert snap["counters"]["parallel.morsels"] == 2
        assert snap["counters"]["parallel.steals"] == 1
        assert snap["gauges"]["parallel.workers"] == 2
        assert snap["histograms"]["morsel.seconds"]["count"] == 2
        assert snap["histograms"]["morsel.lane_ops"]["max"] == 70

    def test_none_stats_is_a_noop(self):
        registry = MetricsRegistry()
        registry.record_exec_stats(None)
        assert registry.snapshot()["counters"] == {}


class TestQueryAbsorption:
    @pytest.fixture
    def db(self):
        # Interpreted mode explicitly — these tests assert behavior
        # (intersection-size histograms, serial last_stats) that the
        # compiled pipeline's specialized kernels rightly change, so
        # they must not float with REPRO_EXECUTION_MODE.
        database = Database(execution_mode="interpreted")
        database.load_graph(
            "Edge", random_undirected_edges(30, 90, seed=3), prune=True)
        return database

    def test_query_populates_registry(self, db):
        registry = db.enable_metrics()
        db.query(TRIANGLES)
        snap = registry.snapshot()
        assert snap["counters"]["queries"] == 1
        assert snap["counters"]["ops.simd"] > 0
        assert any(name.startswith("intersect.calls.")
                   for name in snap["counters"])
        assert snap["histograms"]["intersection.size"]["count"] > 0
        assert snap["histograms"]["query.seconds"]["count"] == 1
        assert "trie_cache.entries" in snap["gauges"]

    def test_compiled_query_counts_pipeline_work(self):
        db = Database(execution_mode="compiled")
        db.load_graph(
            "Edge", random_undirected_edges(30, 90, seed=3), prune=True)
        registry = db.enable_metrics()
        db.query(TRIANGLES)
        db.query(TRIANGLES)
        snap = registry.snapshot()
        assert snap["counters"]["queries"] == 2
        assert snap["counters"]["pipeline.codegen_runs"] >= 1
        assert snap["counters"]["pipeline.compiled_bag_calls"] >= 2
        assert snap["gauges"]["plan_cache.rules"] >= 1

    def test_disable_metrics_stops_recording(self, db):
        registry = db.enable_metrics()
        db.query(TRIANGLES)
        first = registry.snapshot()["counters"]["queries"]
        db.disable_metrics()
        db.query(TRIANGLES)
        assert registry.snapshot()["counters"]["queries"] == first

    def test_serial_interpreted_query_keeps_last_stats_none(self, db):
        db.enable_metrics()
        db.query(TRIANGLES)
        assert db.last_stats is None
