"""Metrics registry: instruments, snapshot/reset, query absorption."""

import pytest

from repro import Database
from repro.engine.stats import ExecStats
from repro.obs.metrics import (Histogram, MetricsRegistry, SIZE_BUCKETS,
                               TIME_BUCKETS)

from tests.conftest import random_undirected_edges

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")


class TestInstruments:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_gauge("g", 7)
        registry.observe("h", 3)
        registry.observe("h", 100)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == 3
        assert snap["histograms"]["h"]["max"] == 100
        assert snap["histograms"]["h"]["mean"] == pytest.approx(51.5)

    def test_histogram_buckets_cover_range(self):
        histogram = Histogram("h", buckets=(1, 4, 16))
        for value in (0, 1, 2, 5, 1000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["buckets"]["<=1"] == 2
        assert snap["buckets"]["<=4"] == 1
        assert snap["buckets"]["<=16"] == 1
        assert snap["buckets"]["inf"] == 1

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.set_gauge("g", 1)
        registry.observe("h", 1)
        registry.record_exec_stats(ExecStats())
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_describe_lists_instruments(self):
        registry = MetricsRegistry()
        registry.inc("queries", 2)
        text = registry.describe()
        assert text.startswith("metrics:")
        assert "queries" in text

    def test_time_and_size_buckets_are_increasing(self):
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)
        assert list(TIME_BUCKETS) == sorted(TIME_BUCKETS)


class TestExecStatsAbsorption:
    def test_morsel_histograms_and_counters(self):
        stats = ExecStats(workers=2, mode="forked")
        stats.record_morsel(0, 0, 10, 1.0, 0.01, lane_ops=50)
        stats.record_morsel(1, 1, 10, 1.0, 0.02, lane_ops=70,
                            stolen=True)
        registry = MetricsRegistry()
        registry.record_exec_stats(stats)
        snap = registry.snapshot()
        assert snap["counters"]["parallel.morsels"] == 2
        assert snap["counters"]["parallel.steals"] == 1
        assert snap["gauges"]["parallel.workers"] == 2
        assert snap["histograms"]["morsel.seconds"]["count"] == 2
        assert snap["histograms"]["morsel.lane_ops"]["max"] == 70

    def test_none_stats_is_a_noop(self):
        registry = MetricsRegistry()
        registry.record_exec_stats(None)
        assert registry.snapshot()["counters"] == {}


class TestQueryAbsorption:
    @pytest.fixture
    def db(self):
        # Interpreted mode explicitly — these tests assert behavior
        # (intersection-size histograms, serial last_stats) that the
        # compiled pipeline's specialized kernels rightly change, so
        # they must not float with REPRO_EXECUTION_MODE.
        database = Database(execution_mode="interpreted")
        database.load_graph(
            "Edge", random_undirected_edges(30, 90, seed=3), prune=True)
        return database

    def test_query_populates_registry(self, db):
        registry = db.enable_metrics()
        db.query(TRIANGLES)
        snap = registry.snapshot()
        assert snap["counters"]["queries"] == 1
        assert snap["counters"]["ops.simd"] > 0
        assert any(name.startswith("intersect.calls.")
                   for name in snap["counters"])
        assert snap["histograms"]["intersection.size"]["count"] > 0
        assert snap["histograms"]["query.seconds"]["count"] == 1
        assert "trie_cache.entries" in snap["gauges"]

    def test_compiled_query_counts_pipeline_work(self):
        db = Database(execution_mode="compiled")
        db.load_graph(
            "Edge", random_undirected_edges(30, 90, seed=3), prune=True)
        registry = db.enable_metrics()
        db.query(TRIANGLES)
        db.query(TRIANGLES)
        snap = registry.snapshot()
        assert snap["counters"]["queries"] == 2
        assert snap["counters"]["pipeline.codegen_runs"] >= 1
        assert snap["counters"]["pipeline.compiled_bag_calls"] >= 2
        assert snap["gauges"]["plan_cache.rules"] >= 1

    def test_disable_metrics_stops_recording(self, db):
        registry = db.enable_metrics()
        db.query(TRIANGLES)
        first = registry.snapshot()["counters"]["queries"]
        db.disable_metrics()
        db.query(TRIANGLES)
        assert registry.snapshot()["counters"]["queries"] == first

    def test_serial_interpreted_query_keeps_last_stats_none(self, db):
        db.enable_metrics()
        db.query(TRIANGLES)
        assert db.last_stats is None
