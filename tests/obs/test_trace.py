"""Span tracer: nesting, disabled path, Chrome export, lane attribution."""

import json

import pytest

from repro import Database
from repro.obs.export import (lane_tids, span_nesting_problems, to_chrome,
                              validate_chrome_trace, write_chrome_trace)
from repro.obs.trace import NULL_SPAN, Tracer, maybe_span

from tests.conftest import random_undirected_edges

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")


def traced_db(mode, **overrides):
    db = Database(execution_mode=mode, **overrides)
    db.load_graph("Edge", random_undirected_edges(30, 90, seed=3),
                  prune=True)
    tracer = db.enable_tracing()
    return db, tracer


class TestTracerUnit:
    def test_spans_nest_with_depth(self):
        tracer = Tracer()
        with tracer.span("outer", "query"):
            with tracer.span("inner", "compile", detail=7):
                pass
        assert len(tracer) == 2
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].args == {"detail": 7}
        # The child closes first and lies inside the parent interval.
        assert by_name["outer"].start <= by_name["inner"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_reset_clears_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.lanes() == []

    def test_record_on_worker_lane(self):
        tracer = Tracer()
        t0 = tracer.now()
        tracer.record("morsel:0", "execute", t0, t0 + 0.5,
                      lane="worker-1")
        assert tracer.lanes() == ["worker-1"]
        (span,) = tracer.find(name="morsel:0")
        assert span.seconds == pytest.approx(0.5)

    def test_maybe_span_without_tracer_is_shared_null(self):
        assert maybe_span(None, "x") is NULL_SPAN
        with maybe_span(None, "x") as span:
            assert span is None

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.enabled = False
        assert maybe_span(tracer, "x") is NULL_SPAN
        with maybe_span(tracer, "x"):
            pass
        assert len(tracer) == 0


class TestQueryTracing:
    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_span_tree_covers_the_lifecycle(self, mode):
        db, tracer = traced_db(mode)
        db.query(TRIANGLES)
        names = {s.name for s in tracer.spans}
        assert "query" in names
        assert "parse" in names
        assert "ghd_search" in names
        assert "attribute_order" in names
        assert any(n.startswith("rule:") for n in names)
        assert any(n.startswith("bag:") for n in names)
        if mode == "compiled":
            assert "codegen" in names
            assert "plan_cache.lookup" in names

    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_chrome_export_is_valid(self, mode, tmp_path):
        db, tracer = traced_db(mode)
        db.query(TRIANGLES)
        payload = to_chrome(tracer)
        assert validate_chrome_trace(payload) == []
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_plan_cache_hit_is_annotated(self):
        db, tracer = traced_db("compiled")
        db.query(TRIANGLES)
        tracer.reset()
        db.query(TRIANGLES)
        # Second run: program cache hit upstream of the rule cache, so
        # either no lookup happens (program tier) or it reports a hit.
        lookups = tracer.find(name="plan_cache.lookup")
        assert all(s.args.get("hit") for s in lookups)

    def test_intersection_spans_only_when_opted_in(self):
        # Interpreted mode explicitly: compiled specialized pair
        # kernels legitimately bypass the generic intersection hook.
        db = Database(execution_mode="interpreted")
        db.load_graph("Edge", random_undirected_edges(30, 90, seed=3),
                      prune=True)
        tracer = db.enable_tracing(capture_intersections=True)
        db.query(TRIANGLES)
        assert tracer.find(cat="intersect")
        default_db, default_tracer = traced_db("interpreted")
        default_db.query(TRIANGLES)
        assert default_tracer.find(cat="intersect") == []


class TestLaneAttribution:
    @pytest.fixture
    def parallel_edges(self):
        return random_undirected_edges(120, 600, seed=7)

    def test_static_strategy_uses_distinct_lanes(self, parallel_edges):
        db = Database(parallel_workers=3, parallel_strategy="static",
                      parallel_threshold=0)
        db.load_graph("Edge", parallel_edges, prune=True)
        tracer = db.enable_tracing()
        db.query(TRIANGLES)
        morsels = [s for s in tracer.spans
                   if s.name.startswith("morsel:")]
        lanes = {s.lane for s in morsels}
        assert len(morsels) >= 3
        assert len(lanes) >= 2          # forked workers ran concurrently
        assert validate_chrome_trace(to_chrome(tracer)) == []

    def test_lanes_match_stats_workers(self, parallel_edges):
        db = Database(parallel_workers=3, parallel_threshold=0)
        db.load_graph("Edge", parallel_edges, prune=True)
        tracer = db.enable_tracing()
        db.query(TRIANGLES)
        lanes = {s.lane for s in tracer.spans
                 if s.name.startswith("morsel:")}
        expected = {"worker-%d" % w
                    for w in db.last_stats.worker_busy}
        assert lanes == expected

    def test_lane_tids_are_stable(self):
        assert lane_tids(["main", "worker-2", "worker-0"]) == \
            {"main": 0, "worker-0": 1, "worker-2": 2}


class TestNestingValidator:
    def _event(self, ts, dur, tid=0, name="s"):
        return {"name": name, "ph": "X", "ts": ts, "dur": dur,
                "pid": 1, "tid": tid, "cat": "query"}

    def test_accepts_disjoint_and_nested(self):
        events = [self._event(0, 100, name="parent"),
                  self._event(10, 20, name="child"),
                  self._event(200, 50, name="next")]
        assert span_nesting_problems(events) == []

    def test_rejects_partial_overlap(self):
        events = [self._event(0, 100, name="a"),
                  self._event(50, 100, name="b")]
        problems = span_nesting_problems(events)
        assert problems and "overlap" in problems[0]

    def test_lanes_are_independent(self):
        events = [self._event(0, 100, tid=0),
                  self._event(50, 100, tid=1)]
        assert span_nesting_problems(events) == []


class TestEnvVar:
    def test_repro_trace_path(self, monkeypatch, tmp_path):
        path = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)], prune=True)
        db.query(TRIANGLES)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"]

    def test_repro_trace_flag_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)], prune=True)
        db.query(TRIANGLES)
        assert db.tracer is not None
        assert len(db.tracer) > 0


class TestDisabledTracerZeroAllocation:
    """Micro-benchmark for the morsel hot loop's tracing overhead.

    ``_run_inline`` in ``repro.engine.parallel`` hoists the
    tracer-enabled check out of the per-morsel loop, and every engine
    instrumentation point goes through ``maybe_span`` whose disabled
    path returns the shared ``NULL_SPAN``.  With tracing off, a full
    parallel query must therefore allocate *zero* bytes inside
    ``repro/obs/trace.py`` — asserted here with ``tracemalloc``
    filtered to that file.  (Referenced from the hoist comment in
    ``parallel._run_inline``.)
    """

    @staticmethod
    def _trace_module_bytes(db, query):
        import tracemalloc

        from repro.obs import trace as trace_module
        trace_file = trace_module.__file__
        db.query(query)  # warm tries, plan caches, morsel runners
        tracemalloc.start()
        try:
            tracemalloc.clear_traces()
            db.query(query)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = snapshot.filter_traces(
            [tracemalloc.Filter(True, trace_file)]).statistics("filename")
        return sum(stat.size for stat in stats)

    def test_untraced_parallel_query_allocates_nothing(self):
        db = Database(parallel_workers=2, parallel_threshold=0)
        db.load_graph("Edge", random_undirected_edges(40, 160, seed=6),
                      prune=True)
        assert db.tracer is None
        assert self._trace_module_bytes(db, TRIANGLES) == 0
        assert db.last_stats.mode in ("inline", "forked")
        assert db.last_stats.n_morsels > 1

    def test_enabled_tracer_is_visible_to_the_probe(self):
        """Sanity for the measurement: the same probe reports nonzero
        span allocations once tracing is on, proving the zero above is
        a real zero and not a filtering artifact."""
        db = Database(parallel_workers=2, parallel_threshold=0)
        db.load_graph("Edge", random_undirected_edges(40, 160, seed=6),
                      prune=True)
        db.enable_tracing()
        assert self._trace_module_bytes(db, TRIANGLES) > 0
