"""Smoke tests: every shipped example must run to completion.

Each example asserts its own correctness internally (comparisons
against numpy / brute force), so a clean exit is a meaningful check.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=240)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
