"""Unit tests for edge preprocessing (§5.2.1)."""

import numpy as np

from repro.graphs import (degrees, highest_degree_node, neighborhoods,
                          symmetric_filter, undirect)


class TestUndirect:
    def test_adds_both_directions(self):
        out = undirect([[0, 1], [1, 2]])
        assert set(map(tuple, out.tolist())) == {(0, 1), (1, 0), (1, 2),
                                                 (2, 1)}

    def test_drops_self_loops_and_duplicates(self):
        out = undirect([[0, 0], [0, 1], [1, 0]])
        assert set(map(tuple, out.tolist())) == {(0, 1), (1, 0)}


class TestSymmetricFilter:
    def test_keeps_one_direction(self):
        out = symmetric_filter([[1, 0], [0, 1], [2, 1]])
        assert out.tolist() == [[0, 1], [1, 2]]

    def test_idempotent(self):
        once = symmetric_filter([[3, 1], [1, 3], [0, 2]])
        twice = symmetric_filter(once)
        assert np.array_equal(once, twice)

    def test_halves_undirected_edges(self):
        edges = undirect([[0, 1], [1, 2], [0, 2]])
        pruned = symmetric_filter(edges)
        assert pruned.shape[0] * 2 == edges.shape[0]


class TestDegreeUtilities:
    def test_degrees(self):
        out = degrees([[0, 1], [0, 2]], n_nodes=4)
        assert out.tolist() == [2, 1, 1, 0]

    def test_highest_degree_node(self):
        assert highest_degree_node([[0, 1], [0, 2], [3, 0]]) == 0

    def test_neighborhoods_sorted(self):
        hoods = neighborhoods([[0, 2], [0, 1]], n_nodes=3)
        assert hoods[0].tolist() == [1, 2]
        assert hoods[1].tolist() == [0]
        assert hoods[2].tolist() == [0]
