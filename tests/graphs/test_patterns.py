"""Pattern-query correctness against brute force, across engine configs."""

import pytest

from repro import Database
from repro.graphs import (barbell_count, four_clique_count, lollipop_count,
                          selection_barbell_count,
                          selection_four_clique_count, triangle_count)
from tests.conftest import (brute_force_four_cliques,
                            brute_force_triangles,
                            random_undirected_edges)


@pytest.fixture(scope="module")
def edges():
    return random_undirected_edges(35, 160, seed=11)


def database(edges, prune, **overrides):
    db = Database(**overrides)
    db.load_graph("Edge", edges, prune=prune)
    return db


class TestAgainstBruteForce:
    def test_triangle_count(self, edges):
        db = database(edges, prune=True)
        assert triangle_count(db) == brute_force_triangles(edges)

    def test_four_clique_count(self, edges):
        db = database(edges, prune=True)
        assert four_clique_count(db) == brute_force_four_cliques(edges)

    def test_lollipop_count(self, edges):
        """Each unordered triangle {a,b,c} contributes 6 ordered (x,y,z)
        assignments, times deg(x)-2 tail choices... easier: brute force
        directly."""
        adjacency = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        expected = 0
        for x in adjacency:
            for y in adjacency[x]:
                for z in adjacency[x]:
                    if z in adjacency[y] and y != z:
                        expected += len(adjacency[x])
        db = database(edges, prune=False)
        assert lollipop_count(db) == expected

    def test_triangle_pruned_is_one_sixth_of_unpruned(self, edges):
        pruned = triangle_count(database(edges, prune=True))
        unpruned = triangle_count(database(edges, prune=False))
        assert unpruned == 6 * pruned


class TestConfigurationEquivalence:
    """Every ablation must change performance, never answers."""

    CONFIGS = [
        {},
        {"use_ghd": False},
        {"layout_level": "uint_only"},
        {"layout_level": "uint_only", "adaptive_algorithms": False},
        {"layout_level": "block"},
        {"layout_level": "bitset_only"},
        {"simd": False},
        {"eliminate_redundant_bags": False},
        {"skip_top_down": False},
    ]

    @pytest.mark.parametrize("overrides", CONFIGS)
    def test_barbell_invariant_under_config(self, edges, overrides):
        reference = barbell_count(database(edges, prune=False))
        db = database(edges, prune=False, **overrides)
        assert barbell_count(db) == reference

    @pytest.mark.parametrize("overrides", CONFIGS)
    def test_triangle_invariant_under_config(self, edges, overrides):
        reference = brute_force_triangles(edges)
        db = database(edges, prune=True, **overrides)
        assert triangle_count(db) == reference


class TestSelectionQueries:
    def test_sk4_counts_cliques_through_node(self, edges):
        db = database(edges, prune=False)
        adjacency = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        node = max(adjacency, key=lambda n: len(adjacency[n]))
        got = db.query(selection_four_clique_count(node)).scalar
        import itertools
        # brute force: ordered 4-cliques (x,y,z,u) with x ~ node
        count = 0
        nodes = sorted(adjacency)
        for combo in itertools.combinations(nodes, 4):
            if all(b in adjacency[a]
                   for a, b in itertools.combinations(combo, 2)):
                # 24 orderings; x is each member once -> 6 orderings each
                for member in combo:
                    if member in adjacency[node] :
                        count += 6
        assert got == count

    def test_sb_pushdown_invariance(self, edges):
        db_push = database(edges, prune=False, push_selections=True)
        db_flat = database(edges, prune=False, push_selections=False)
        node = 0
        query = selection_barbell_count(node)
        assert db_push.query(query).scalar == db_flat.query(query).scalar
