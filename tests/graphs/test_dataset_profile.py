"""Tests for dataset profiles (the Table 3 rows)."""

import pytest

from repro.graphs import DATASETS
from repro.graphs.datasets import dataset_profile


class TestProfiles:
    def test_profile_fields(self):
        profile = dataset_profile("patents")
        assert profile["name"] == "patents"
        assert profile["nodes"] > 0
        assert profile["undirected_edges"] == 7000
        assert profile["directed_edges"] == 14000
        assert profile["skew_class"] == "low"
        assert isinstance(profile["density_skew"], float)

    def test_skew_ordering_matches_table3(self):
        """Google+ most skewed; the low-skew class below the modest
        class — the qualitative structure of the paper's Table 3."""
        skews = {name: dataset_profile(name)["density_skew"]
                 for name in DATASETS}
        assert skews["googleplus"] == max(skews.values())
        assert skews["googleplus"] > skews["patents"]
        assert skews["googleplus"] > skews["livejournal"]
        assert skews["googleplus"] > skews["orkut"]
        assert min(skews, key=skews.get) in ("orkut", "livejournal",
                                             "patents")

    def test_twitter_largest_patents_small(self):
        sizes = {name: dataset_profile(name)["undirected_edges"]
                 for name in DATASETS}
        assert max(sizes, key=sizes.get) == "twitter"
        assert sizes["patents"] == min(sizes.values())
