"""Tests for PageRank and SSSP through the query language."""

import numpy as np
import pytest

from repro import Database
from repro.baselines import dijkstra_reference
from repro.graphs import (highest_degree_node, pagerank, pagerank_program,
                          run_pagerank_on_edges, run_sssp_on_edges, sssp,
                          sssp_program, undirect)
from tests.conftest import random_undirected_edges


def reference_pagerank(edges, iterations=5, damping=0.85):
    adjacency = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    n = len(adjacency)
    rank = {v: 1.0 / n for v in adjacency}
    for _ in range(iterations):
        rank = {x: (1.0 - damping) + damping * sum(
            rank[z] / len(adjacency[z]) for z in adjacency[x])
            for x in adjacency}
    return rank


class TestPageRank:
    def test_matches_reference(self, small_edges):
        got = run_pagerank_on_edges(small_edges)
        expected = reference_pagerank(small_edges)
        assert set(got) == set(expected)
        for node, value in expected.items():
            assert got[node] == pytest.approx(value, abs=1e-12)

    def test_iteration_count_matters(self, small_edges):
        one = run_pagerank_on_edges(small_edges, iterations=1)
        five = run_pagerank_on_edges(small_edges, iterations=5)
        assert any(abs(one[k] - five[k]) > 1e-9 for k in one)

    def test_damping_parameter(self, small_edges):
        undamped = run_pagerank_on_edges(small_edges)
        damped = reference_pagerank(small_edges, damping=0.5)
        db = Database()
        db.load_graph("Edge", small_edges, undirected=True)
        got = pagerank(db, damping=0.5)
        for node, value in damped.items():
            assert got[node] == pytest.approx(value, abs=1e-12)
        assert any(abs(undamped[k] - got[k]) > 1e-9 for k in got)

    def test_program_text_shape(self):
        text = pagerank_program(iterations=7, damping=0.9)
        assert "*[i=7]" in text
        assert "0.9*<<SUM(z)>>" in text

    def test_string_node_ids(self):
        ranks = run_pagerank_on_edges([("a", "b"), ("b", "c")])
        assert set(ranks) == {"a", "b", "c"}
        assert ranks["b"] > ranks["a"]


class TestSSSP:
    def test_matches_dijkstra(self, small_edges):
        und = undirect(np.asarray(small_edges))
        source = highest_degree_node(und)
        got = run_sssp_on_edges(small_edges, source)
        expected = dijkstra_reference(und, source,
                                      n_nodes=int(und.max()) + 1)
        assert got == expected

    def test_unreachable_nodes_absent(self):
        edges = [(0, 1), (2, 3)]
        distances = run_sssp_on_edges(edges, 0)
        assert 1 in distances
        assert 2 not in distances and 3 not in distances

    def test_string_source(self):
        distances = run_sssp_on_edges([("s", "a"), ("a", "b")], "s")
        assert distances == {"a": 1, "s": 2, "b": 2}

    def test_program_text_quotes_strings(self):
        assert "Edge('s',x)" in sssp_program("s")
        assert "Edge(3,x)" in sssp_program(3)

    def test_sssp_via_db_instance(self, small_db, small_edges):
        und = undirect(np.asarray(small_edges))
        source = highest_degree_node(und)
        got = sssp(small_db, source)
        expected = dijkstra_reference(und, source,
                                      n_nodes=int(und.max()) + 1)
        assert got == expected
