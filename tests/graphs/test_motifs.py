"""Tests for the motif query builders, validated against brute force."""

import itertools

import pytest

from repro import Database, PlanError
from repro.graphs.motifs import (PAPER_MOTIFS, barbell, clique,
                                 count_motif, cycle, lollipop, path, star)
from tests.conftest import random_undirected_edges


@pytest.fixture(scope="module")
def edges():
    return random_undirected_edges(16, 50, seed=12)


@pytest.fixture(scope="module")
def adjacency(edges):
    adj = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    return adj


@pytest.fixture(scope="module")
def db(edges):
    database = Database()
    database.load_graph("Edge", edges)
    return database


@pytest.fixture(scope="module")
def pruned_db(edges):
    database = Database()
    database.load_graph("Edge", edges, prune=True)
    return database


class TestQueryGeneration:
    def test_clique_text(self):
        text = clique(3)
        assert text.startswith("K3(;w:long)")
        assert text.count("Edge(") == 3

    def test_listing_variant(self):
        text = clique(3, count=False)
        assert text.startswith("K3(a,b,c)")
        assert "COUNT" not in text

    def test_barbell_matches_paper_shape(self):
        assert barbell(3).count("Edge(") == 7  # 3 + 1 bridge + 3

    def test_size_guards(self):
        with pytest.raises(PlanError):
            clique(1)
        with pytest.raises(PlanError):
            cycle(2)
        with pytest.raises(PlanError):
            path(1)
        with pytest.raises(PlanError):
            star(0)
        with pytest.raises(PlanError):
            clique(40)

    def test_paper_motifs_registry(self):
        assert set(PAPER_MOTIFS) == {"triangle", "four_clique",
                                     "lollipop", "barbell"}


class TestCountsAgainstBruteForce:
    @pytest.mark.parametrize("k", [3, 4])
    def test_cliques_on_pruned(self, pruned_db, adjacency, k):
        expected = sum(
            1 for combo in itertools.combinations(sorted(adjacency), k)
            if all(b in adjacency[a]
                   for a, b in itertools.combinations(combo, 2)))
        assert count_motif(pruned_db, clique(k)) == expected

    def test_cycle4(self, db, adjacency):
        expected = 0
        for a in adjacency:
            for b in adjacency[a]:
                for c in adjacency[b]:
                    expected += sum(1 for d in adjacency[c]
                                    if a in adjacency[d])
        assert count_motif(db, cycle(4)) == expected

    def test_path3(self, db, adjacency):
        expected = sum(len(adjacency[b])
                       for a in adjacency for b in adjacency[a])
        assert count_motif(db, path(3)) == expected

    def test_star3(self, db, adjacency):
        expected = sum(len(adjacency[h]) ** 3 for h in adjacency)
        assert count_motif(db, star(3)) == expected

    def test_lollipop3_equals_patterns_module(self, db):
        from repro.graphs import LOLLIPOP_COUNT
        assert count_motif(db, lollipop(3)) == \
            db.query(LOLLIPOP_COUNT).scalar

    def test_barbell3_equals_patterns_module(self, db):
        from repro.graphs import BARBELL_COUNT
        assert count_motif(db, barbell(3)) == \
            db.query(BARBELL_COUNT).scalar

    def test_barbell_plan_decomposes(self, db):
        plan = db.plan(barbell(3))
        assert plan.ghd.n_nodes == 3
        assert plan.ghd.width() == pytest.approx(1.5)
