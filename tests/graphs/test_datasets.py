"""Unit tests for synthetic dataset generators (Table 3 analogs)."""

import numpy as np
import pytest

from repro.graphs import (DATASETS, MICRO_DATASETS, chung_lu_graph,
                          complete_graph, load_dataset, neighborhoods,
                          read_edgelist, rmat_graph, set_with_dense_region,
                          synthetic_set, uniform_graph)
from repro.sets import density_skew


class TestGenerators:
    def test_chung_lu_shape_and_simplicity(self):
        edges = chung_lu_graph(200, 500, exponent=2.3, seed=1)
        assert edges.shape[1] == 2
        assert (edges[:, 0] < edges[:, 1]).all()       # src < dst
        assert len(set(map(tuple, edges.tolist()))) == edges.shape[0]

    def test_chung_lu_deterministic(self):
        a = chung_lu_graph(100, 200, seed=3)
        b = chung_lu_graph(100, 200, seed=3)
        assert np.array_equal(a, b)

    def test_lower_exponent_more_skew(self):
        heavy = chung_lu_graph(800, 3000, exponent=1.7, seed=5)
        light = chung_lu_graph(800, 3000, exponent=3.0, seed=5)

        def max_degree(edges):
            degree = np.zeros(800, dtype=np.int64)
            np.add.at(degree, edges[:, 0], 1)
            np.add.at(degree, edges[:, 1], 1)
            return degree.max()

        assert max_degree(heavy) > 2 * max_degree(light)

    def test_rmat(self):
        edges = rmat_graph(8, 400, seed=2)
        assert edges.shape[0] > 300
        assert edges.max() < 2 ** 8
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_uniform(self):
        edges = uniform_graph(100, 300, seed=1)
        assert edges.shape == (300, 2)

    def test_complete(self):
        edges = complete_graph(5)
        assert edges.shape[0] == 10

    def test_read_edgelist(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n0 1\n1\t2\n")
        edges = read_edgelist(str(path))
        assert edges.tolist() == [[0, 1], [1, 2]]


class TestRegistry:
    def test_all_named_datasets_generate(self):
        for name, spec in DATASETS.items():
            edges = load_dataset(name)
            assert edges.shape[0] >= 0.9 * spec.n_edges, name
            assert edges.max() < spec.n_nodes

    def test_micro_datasets_subset(self):
        assert set(MICRO_DATASETS) < set(DATASETS)
        assert "twitter" not in MICRO_DATASETS

    def test_skew_classes_ordered_like_table3(self):
        """Google+ (high skew) must measure more density skew than the
        low-skew analogs, matching Table 3's characterization."""
        skews = {name: density_skew(neighborhoods(load_dataset(name)))
                 for name in ("googleplus", "livejournal", "patents")}
        assert skews["googleplus"] > skews["livejournal"]
        assert skews["googleplus"] > skews["patents"]

    def test_twitter_is_largest(self):
        sizes = {name: load_dataset(name).shape[0]
                 for name in DATASETS}
        assert max(sizes, key=sizes.get) == "twitter"


class TestSyntheticSets:
    def test_synthetic_set_cardinality_and_range(self):
        values = synthetic_set(100, 10000, seed=1)
        assert values.size == 100
        assert values.max() < 10000
        assert (np.diff(values) > 0).all()

    def test_synthetic_set_saturates(self):
        values = synthetic_set(50, 10)
        assert values.tolist() == list(range(10))

    def test_dense_region_set(self):
        values = set_with_dense_region(1000, 100000, 0.5, seed=2)
        diffs = np.diff(values)
        # A contiguous run of ~500 unit gaps must exist.
        runs = np.count_nonzero(diffs == 1)
        assert runs > 400
