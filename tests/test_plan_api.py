"""Tests for the compile-only planning API (Database.plan / explain)."""

import pytest

from repro import Database
from repro.engine import PhysicalPlan


@pytest.fixture
def db():
    database = Database()
    database.load_graph("Edge", [(0, 1), (1, 2), (0, 2), (2, 3)])
    return database


class TestPlanAPI:
    def test_plan_returns_physical_plan_without_executing(self, db):
        before = db.counter.total_ops
        plan = db.plan("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                       "w=<<COUNT(*)>>.")
        assert isinstance(plan, PhysicalPlan)
        assert db.counter.total_ops == before  # nothing ran
        assert "T" not in db.catalog           # nothing installed

    def test_plan_width_and_bags(self, db):
        plan = db.plan(
            "B(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,p),"
            "Edge(p,q),Edge(q,r),Edge(p,r); w=<<COUNT(*)>>.")
        assert plan.ghd.width() == pytest.approx(1.5)
        assert len(plan.bags) == 3
        assert plan.aggregate_mode

    def test_plan_respects_ablation(self, db):
        flat = Database(use_ghd=False)
        flat.load_graph("Edge", [(0, 1), (1, 2), (0, 2), (2, 3)])
        plan = flat.plan(
            "B(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,p),"
            "Edge(p,q),Edge(q,r),Edge(p,r); w=<<COUNT(*)>>.")
        assert len(plan.bags) == 1
        assert plan.ghd.width() == pytest.approx(3.0)

    def test_explain_is_compile_only(self, db):
        text = db.explain("Q(x,y) :- Edge(x,y),Edge(y,q).")
        assert "GHD" in text and "physical bags" in text
        assert "Q" not in db.catalog

    def test_plan_of_materialize_rule(self, db):
        plan = db.plan("Q(x,z) :- Edge(x,y),Edge(y,z).")
        assert not plan.aggregate_mode
        # Each bag retains its join keys for the (potential) top-down.
        for bag in plan.bags:
            assert set(bag.out_attrs) <= set(bag.chi)

    def test_plan_unknown_relation_raises(self, db):
        from repro import UnknownRelationError
        with pytest.raises(UnknownRelationError):
            db.plan("Q(x) :- Missing(x,y).")
