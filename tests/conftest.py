"""Shared fixtures: small deterministic graphs and databases."""

import itertools
import random

import numpy as np
import pytest

from repro import Database


def random_undirected_edges(n_nodes, n_edges, seed=0):
    """Deterministic random simple undirected edge list (src < dst)."""
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    while len(edges) < n_edges and attempts < 50 * n_edges:
        u, v = rng.randrange(n_nodes), rng.randrange(n_nodes)
        attempts += 1
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return sorted(edges)


def brute_force_triangles(edges):
    """Reference triangle count over undirected edges."""
    adjacency = {}
    nodes = set()
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
        nodes.update((u, v))
    return sum(
        1 for a, b, c in itertools.combinations(sorted(nodes), 3)
        if b in adjacency[a] and c in adjacency[a] and c in adjacency[b])


def brute_force_four_cliques(edges):
    """Reference 4-clique count over undirected edges."""
    adjacency = {}
    nodes = set()
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
        nodes.update((u, v))
    return sum(
        1 for combo in itertools.combinations(sorted(nodes), 4)
        if all(b in adjacency[a]
               for a, b in itertools.combinations(combo, 2)))


@pytest.fixture
def small_edges():
    """40-node, 150-edge random graph with a few dozen triangles."""
    return random_undirected_edges(40, 150, seed=42)


@pytest.fixture
def small_db(small_edges):
    """Database with the small graph loaded undirected (not pruned)."""
    db = Database()
    db.load_graph("Edge", small_edges, undirected=True)
    return db


@pytest.fixture
def pruned_db(small_edges):
    """Database with the small graph symmetrically filtered."""
    db = Database()
    db.load_graph("Edge", small_edges, prune=True)
    return db


@pytest.fixture
def k5_db():
    """Complete graph K5, pruned — exactly C(5,3)=10 triangles."""
    edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
    db = Database()
    db.load_graph("Edge", edges, prune=True)
    return db


def sorted_array(values):
    """Sorted unique uint32 array from any iterable (test helper)."""
    return np.unique(np.asarray(list(values), dtype=np.uint32))
