"""Compiled pipeline: codegen-vs-interpreter parity and plan caching.

The compiled execution path must be *bit-identical* to the interpreting
:class:`~repro.engine.generic_join.BagEvaluator` — same tuples, same
annotation arrays, same scalars — across set layouts, semirings, head
modes, and worker counts.  On top of parity, the plan cache must make a
repeated query skip parse, GHD search, and code generation entirely,
which the ``ExecStats`` counters prove.
"""

import numpy as np
import pytest

from repro import Database
from repro.engine.codegen import (InputSpec, compile_count_rule,
                                  generate_bag_plan, trie_level_kind)
from repro.engine.plan_cache import PlanCache, config_signature
from repro.engine.semiring import COUNT, SUM
from repro.errors import ExecutionError
from repro.query import parse_rule
from repro.sets import BitSet, BlockedSet, PShortSet, UintSet
from repro.sets.intersect import PAIR_KERNELS, intersect, \
    specialized_pair_kernel
from tests.conftest import brute_force_triangles, random_undirected_edges

EDGES = random_undirected_edges(30, 110, seed=7)
WEIGHTED = [(u, v) for u, v in random_undirected_edges(25, 80, seed=3)]
WEIGHTS = [((u * 7 + v * 13) % 11) / 4.0 + 0.25 for u, v in WEIGHTED]

LAYOUTS = ["set", "uint_only", "bitset_only", "block"]

QUERIES = [
    # scalar COUNT(*) — the paper's triangle query
    "T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.",
    # materializing head, no aggregation
    "Tri(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).",
    # projection (EXISTS folds the aggregated suffix)
    "P(x,z) :- Edge(x,y),Edge(y,z).",
    # keyed COUNT
    "D(x;c:long) :- Edge(x,y); c=<<COUNT(*)>>.",
    # annotated SUM through a three-atom join
    "S(x;s:float) :- W(x,y),Edge(y,z); s=<<SUM(*)>>.",
    # MIN / MAX over annotations
    "M(x;m:float) :- W(x,y); m=<<MIN(*)>>.",
    "X(;m:float) :- W(x,y); m=<<MAX(*)>>.",
    # COUNT(v): distinct bindings per head tuple
    "N(;c:long) :- Edge(x,y); c=<<COUNT(x)>>.",
    "C(x;c:long) :- Edge(x,y),Edge(y,z); c=<<COUNT(z)>>.",
    # constant selection pushed into the plan
    "F(y) :- Edge(0,y).",
    # multi-bag GHD plan (two triangle bags sharing an edge path)
    "B(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),"
    "Edge(z,p),Edge(p,q),Edge(z,q); w=<<COUNT(*)>>.",
]


def make_db(mode, layout="set", workers=1):
    db = Database(execution_mode=mode, layout_level=layout,
                  parallel_workers=workers, parallel_threshold=4)
    db.load_graph("Edge", EDGES)
    db.add_relation("W", WEIGHTED, annotations=WEIGHTS)
    return db


def assert_identical(a, b, query):
    assert np.array_equal(a.relation.data, b.relation.data), query
    ann_a, ann_b = a.relation.annotations, b.relation.annotations
    if ann_a is None or ann_b is None:
        assert ann_a is None and ann_b is None, query
    else:
        assert np.array_equal(ann_a, ann_b), query


class TestParityMatrix:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("query", QUERIES)
    def test_layouts_serial(self, layout, query):
        interpreted = make_db("interpreted", layout)
        compiled = make_db("compiled", layout)
        assert_identical(interpreted.query(query),
                         compiled.query(query), query)

    @pytest.mark.parametrize("query", QUERIES)
    def test_four_workers(self, query):
        interpreted = make_db("interpreted", workers=4)
        compiled = make_db("compiled", workers=4)
        assert_identical(interpreted.query(query),
                         compiled.query(query), query)

    def test_triangles_match_brute_force(self):
        compiled = make_db("compiled")
        assert compiled.query(QUERIES[0]).scalar \
            == 6.0 * brute_force_triangles(EDGES)

    def test_recursion_parity(self):
        program = ("R(x,y) :- Edge(x,y). "
                   "R(x,y)* :- R(x,z),Edge(z,y).")
        interpreted = make_db("interpreted")
        compiled = make_db("compiled")
        assert_identical(interpreted.query(program),
                         compiled.query(program), program)

    def test_repeated_queries_stay_identical(self):
        compiled = make_db("compiled")
        first = compiled.query(QUERIES[0]).scalar
        for _ in range(3):
            assert compiled.query(QUERIES[0]).scalar == first

    def test_unknown_mode_rejected(self):
        db = make_db("interpreted")
        db.config = db.config.ablated(execution_mode="vectorized")
        db._executor.config = db.config
        with pytest.raises(ExecutionError):
            db._executor.execute(parse_rule(QUERIES[1]))


class TestPlanCache:
    def test_repeat_skips_parse_ghd_codegen(self):
        db = make_db("compiled")
        db.query(QUERIES[0])
        first = db.last_stats
        assert first.parses == 1
        assert first.ghd_builds >= 1
        assert first.codegen_runs >= 1
        assert first.plan_cache_misses >= 1
        db.query(QUERIES[0])
        second = db.last_stats
        assert second.parses == 0
        assert second.ghd_builds == 0
        assert second.codegen_runs == 0
        assert second.bag_codegen_reuses == 0
        assert second.plan_cache_hits >= 1
        assert second.plan_cache_misses == 0
        assert second.compiled_bag_calls >= 1

    def test_reload_invalidates_by_identity(self):
        db = make_db("compiled")
        db.query(QUERIES[0])
        db.load_graph("Edge", random_undirected_edges(30, 90, seed=11))
        db.query(QUERIES[0])
        stats = db.last_stats
        # The rule must recompile (guards saw a new relation object)…
        assert stats.plan_cache_misses >= 1
        assert stats.ghd_builds >= 1
        # …but the bag-source tier still matches the unchanged shape.
        assert stats.codegen_runs == 0
        assert stats.bag_codegen_reuses >= 1

    def test_config_signature_separates_ablations(self):
        base = make_db("compiled")
        assert config_signature(base.config) \
            != config_signature(base.config.ablated(simd=False))
        assert config_signature(base.config) \
            == config_signature(base.config.ablated(parallel_workers=8))

    def test_rule_tier_evicts_oldest(self):
        cache = PlanCache(max_entries=2)
        for i in range(4):
            cache.put_program(("q%d" % i, ()), [])
        assert len(cache) == 2
        assert cache.get_program(("q3", ())) is not None
        assert cache.get_program(("q0", ())) is None

    def test_describe_mentions_compiled_counters(self):
        db = make_db("compiled")
        db.query(QUERIES[0])
        text = db.last_stats.describe()
        assert "plan cache" in text and "codegen" in text

    def test_identical_rule_shapes_share_source(self):
        # Two rules with the same bag shape: the second compiles its
        # plan but reuses the first's generated source verbatim.
        program = ("T1(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                   "w=<<COUNT(*)>>. "
                   "T2(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                   "w=<<COUNT(*)>>.")
        db = make_db("compiled")
        result = db.query(program)
        stats = db.last_stats
        assert stats.ghd_builds == 2
        assert stats.codegen_runs == 1
        assert stats.bag_codegen_reuses == 1
        assert result.scalar == 6.0 * brute_force_triangles(EDGES)


class TestGeneratedCode:
    def test_unannotated_count_accumulates_in_int(self):
        db = make_db("interpreted")
        rule = parse_rule(QUERIES[0])
        generated, tries = compile_count_rule(rule, db)
        value = generated(tries, db.config)
        assert isinstance(value, int) and not isinstance(value, bool)
        # The old float accumulator bug: no float literals belong in an
        # unannotated COUNT loop nest.
        assert "0.0" not in generated.source

    def test_materializing_source_shape(self):
        specs = [InputSpec("E", ("x", "y")), InputSpec("F", ("y", "z"))]
        generated = generate_bag_plan(("x", "y", "z"), 2, specs, COUNT)
        assert "chunks.append" in generated.source
        assert "_assemble" in generated.source

    def test_annotated_sum_uses_float_zero(self):
        specs = [InputSpec("W", ("x", "y"), annotated=True)]
        generated = generate_bag_plan(("x", "y"), 0, specs, SUM)
        assert "annotation" in generated.source

    def test_specialized_kernels_match_generic(self):
        config = Database().config
        rng = np.random.RandomState(5)
        arrays = [
            np.unique(rng.randint(0, 120, size=60)).astype(np.uint32),
            np.unique(rng.randint(0, 5000, size=40)).astype(np.uint32),
            np.arange(200, 460, 2, dtype=np.uint32),
        ]
        kinds_seen = set()
        for a in arrays:
            for b in arrays:
                for make_x in (UintSet, BitSet, PShortSet, BlockedSet):
                    for make_y in (UintSet, BitSet, PShortSet,
                                   BlockedSet):
                        x, y = make_x(a), make_y(b)
                        kernel = specialized_pair_kernel(x.kind, y.kind)
                        if kernel is None:
                            continue
                        kinds_seen.add((x.kind, y.kind))
                        expected = intersect(x, y, config.counter,
                                             simd=config.simd)
                        got = kernel(x, y, config)
                        assert np.array_equal(got.to_array(),
                                              expected.to_array())
        assert len(kinds_seen) == len(PAIR_KERNELS)

    def test_kernel_table_covers_pshort(self):
        assert ("pshort", "pshort") in PAIR_KERNELS
        assert specialized_pair_kernel("variant", "uint") is None

    def test_trie_level_kind_homogeneous_layouts(self):
        db = Database(layout_level="uint_only")
        db.load_graph("Edge", EDGES)
        trie = db._trie_cache.get(db.catalog["Edge"], (0, 1),
                                  "uint_only")
        assert trie_level_kind(trie, 0, "uint_only") == "uint"
        assert trie_level_kind(trie, 1, "uint_only") == "uint"
        assert trie_level_kind(trie, 0, "bitset_only") == "bitset"
        assert trie_level_kind(trie, 0, "block") == "block"
