"""Unit tests for the rule executor: normalization, expressions, plans."""

import numpy as np
import pytest

from repro import Database
from repro.engine import EngineConfig, RuleExecutor, TrieCache
from repro.engine.executor import eval_expression
from repro.lir.build import normalize_atom
from repro.errors import (ExecutionError, PlanError, UnknownRelationError)
from repro.query import parse_rule
from repro.query.ast import Agg, BinOp, Num, Ref
from repro.storage import Relation


def catalog_with_edges(rows, annotations=None):
    return {"E": Relation("E", np.asarray(rows, dtype=np.uint32),
                          annotations)}


class TestNormalization:
    def test_plain_atom_passthrough(self):
        catalog = catalog_with_edges([[0, 1], [1, 2]])
        atom = parse_rule("Q(x,y) :- E(x,y).").body[0]
        normalized = normalize_atom(atom, catalog)
        assert normalized.relation is catalog["E"]
        assert normalized.variables == ("x", "y")
        assert not normalized.is_selection

    def test_constant_filters_rows(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        atom = parse_rule("Q(y) :- E(0,y).").body[0]
        normalized = normalize_atom(atom, catalog)
        assert normalized.is_selection
        assert normalized.variables == ("y",)
        assert normalized.relation.data.ravel().tolist() == [1, 2]

    def test_missing_constant_empties_relation(self):
        catalog = {"E": Relation.from_tuples("E", [("a", "b")])}
        atom = parse_rule("Q(y) :- E('zzz',y).").body[0]
        normalized = normalize_atom(atom, catalog)
        assert normalized.relation.cardinality == 0

    def test_repeated_variable_becomes_equality_filter(self):
        catalog = catalog_with_edges([[0, 0], [0, 1], [2, 2]])
        atom = parse_rule("Q(x) :- E(x,x).").body[0]
        normalized = normalize_atom(atom, catalog)
        assert normalized.variables == ("x",)
        assert normalized.relation.data.ravel().tolist() == [0, 2]

    def test_unknown_relation(self):
        atom = parse_rule("Q(x) :- Nope(x,x).").body[0]
        with pytest.raises(UnknownRelationError):
            normalize_atom(atom, {})

    def test_arity_mismatch(self):
        catalog = catalog_with_edges([[0, 1]])
        atom = parse_rule("Q(x) :- E(x,y,z).").body[0]
        with pytest.raises(ExecutionError):
            normalize_atom(atom, catalog)

    def test_annotations_filtered_alongside(self):
        catalog = catalog_with_edges([[0, 1], [1, 2]],
                                     annotations=[5.0, 9.0])
        atom = parse_rule("Q(y) :- E(1,y).").body[0]
        normalized = normalize_atom(atom, catalog)
        assert normalized.relation.annotations.tolist() == [9.0]


class TestExpressionEvaluation:
    def test_affine_over_aggregate(self):
        expr = BinOp("+", Num(0.15), BinOp("*", Num(0.85),
                                           Agg("SUM", "z")))
        assert eval_expression(expr, 2.0, {}) == pytest.approx(1.85)

    def test_vectorized_over_arrays(self):
        expr = BinOp("*", Num(2.0), Agg("SUM", "z"))
        out = eval_expression(expr, np.array([1.0, 2.0]), {})
        assert out.tolist() == [2.0, 4.0]

    def test_scalar_reference(self):
        assert eval_expression(BinOp("/", Num(1.0), Ref("N")),
                               None, {"N": 4.0}) == 0.25

    def test_unknown_reference(self):
        with pytest.raises(ExecutionError):
            eval_expression(Ref("M"), None, {})

    def test_aggregate_without_context(self):
        with pytest.raises(ExecutionError):
            eval_expression(Agg("SUM", "z"), None, {})

    def test_subtraction_and_division(self):
        expr = BinOp("-", Num(10.0), BinOp("/", Num(4.0), Num(2.0)))
        assert eval_expression(expr, None, {}) == 8.0


class TestExecutorPaths:
    def test_head_var_unbound_rejected(self):
        executor = RuleExecutor(catalog_with_edges([[0, 1]]),
                                EngineConfig())
        with pytest.raises(PlanError):
            executor.execute(parse_rule("Q(q) :- E(x,y)."))

    def test_multiple_aggregates_rejected(self):
        executor = RuleExecutor(catalog_with_edges([[0, 1]]),
                                EngineConfig())
        rule = parse_rule(
            "Q(;w:int) :- E(x,y); w=<<SUM(x)>>+<<SUM(y)>>.")
        with pytest.raises(PlanError):
            executor.execute(rule)

    def test_count_distinct_scalar(self):
        executor = RuleExecutor(catalog_with_edges(
            [[0, 1], [0, 2], [1, 2]]), EngineConfig())
        rule = parse_rule("N(;w:int) :- E(x,y); w=<<COUNT(x)>>.")
        assert executor.execute(rule).scalar_value == 2.0  # x in {0, 1}

    def test_count_distinct_per_key(self):
        executor = RuleExecutor(catalog_with_edges(
            [[0, 1], [0, 2], [1, 2]]), EngineConfig())
        rule = parse_rule("D(x;c:int) :- E(x,y); c=<<COUNT(y)>>.")
        out = executor.execute(rule)
        got = {row[0]: ann for row, ann in zip(out.data.tolist(),
                                               out.annotations)}
        assert got == {0: 2.0, 1: 1.0}

    def test_count_distinct_of_head_var_rejected(self):
        executor = RuleExecutor(catalog_with_edges([[0, 1]]),
                                EngineConfig())
        rule = parse_rule("D(x;c:int) :- E(x,y); c=<<COUNT(x)>>.")
        with pytest.raises(PlanError):
            executor.execute(rule)

    def test_guard_atom_empties_result(self):
        catalog = catalog_with_edges([[0, 1]])
        catalog["Flag"] = Relation("Flag", np.empty((0, 1),
                                                    dtype=np.uint32))
        executor = RuleExecutor(catalog, EngineConfig())
        rule = parse_rule("Q(x,y) :- E(x,y),Flag(7).")
        assert executor.execute(rule).cardinality == 0

    def test_constant_expression_annotation(self):
        executor = RuleExecutor(catalog_with_edges([[0, 1], [0, 2]]),
                                EngineConfig())
        rule = parse_rule("B(y;d:int) :- E(x,y); d=1.")
        out = executor.execute(rule)
        assert out.annotations.tolist() == [1.0, 1.0]

    def test_last_plan_recorded(self):
        executor = RuleExecutor(catalog_with_edges([[0, 1]]),
                                EngineConfig())
        executor.execute(parse_rule("Q(x,y) :- E(x,y)."))
        assert "GHD" in executor.last_plan.describe()


class TestTrieCache:
    def test_caches_by_relation_identity(self):
        cache = TrieCache()
        relation = Relation("E", np.asarray([[0, 1]], dtype=np.uint32))
        a = cache.get(relation, (0, 1), "set")
        b = cache.get(relation, (0, 1), "set")
        c = cache.get(relation, (1, 0), "set")
        assert a is b
        assert a is not c
        assert len(cache) == 2

    def test_invalidate(self):
        cache = TrieCache()
        relation = Relation("E", np.asarray([[0, 1]], dtype=np.uint32))
        cache.get(relation, (0, 1), "set")
        cache.invalidate(relation)
        assert len(cache) == 0

    def test_replacement_gets_fresh_trie(self):
        cache = TrieCache()
        first = Relation("E", np.asarray([[0, 1]], dtype=np.uint32))
        second = Relation("E", np.asarray([[2, 3]], dtype=np.uint32))
        trie_first = cache.get(first, (0, 1), "set")
        trie_second = cache.get(second, (0, 1), "set")
        assert trie_first is not trie_second
        assert list(trie_second.tuples()) == [(2, 3)]
