"""Semiring linear algebra through the engine (paper §2.3, App. A.1).

"This enables EmptyHeaded to support ... more sophisticated operations
such as matrix multiplication" — verified against numpy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database


def load_matrix(db, name, matrix):
    rows, cols = np.nonzero(matrix)
    data = np.stack([rows, cols], axis=1).astype(np.uint32)
    db.add_encoded(name, data,
                   annotations=matrix[rows, cols].astype(np.float64))


def to_dense(result, shape):
    out = np.zeros(shape)
    for key, value in zip(result.relation.data.tolist(),
                          result.annotations):
        out[tuple(key)] = value
    return out


matrix_strategy = st.integers(0, 2 ** 32 - 1).map(
    lambda seed: np.round(
        np.random.default_rng(seed).random((4, 4))
        * (np.random.default_rng(seed + 1).random((4, 4)) > 0.5), 3))


class TestMatrixMultiply:
    def test_known_product(self):
        a = np.array([[1.0, 2.0], [0.0, 3.0]])
        b = np.array([[4.0, 0.0], [1.0, 5.0]])
        db = Database()
        load_matrix(db, "A", a)
        load_matrix(db, "B", b)
        result = db.query(
            "C(i,k;v:float) :- A(i,j),B(j,k); v=<<SUM(j)>>.")
        assert np.allclose(to_dense(result, (2, 2)), a @ b)

    @given(a=matrix_strategy, b=matrix_strategy)
    @settings(max_examples=25, deadline=None)
    def test_random_products_match_numpy(self, a, b):
        if not a.any() or not b.any():
            return
        db = Database()
        load_matrix(db, "A", a)
        load_matrix(db, "B", b)
        result = db.query(
            "C(i,k;v:float) :- A(i,j),B(j,k); v=<<SUM(j)>>.")
        dense = to_dense(result, (4, 4))
        expected = a @ b
        # Sparse representation drops exact zeros; compare elementwise.
        assert np.allclose(dense, expected, atol=1e-12)

    def test_matrix_vector(self):
        a = np.array([[1.0, 2.0, 0.0], [0.0, 0.5, 4.0]])
        v = np.array([3.0, 1.0, 2.0])
        db = Database()
        load_matrix(db, "A", a)
        db.add_encoded("V", np.arange(3, dtype=np.uint32).reshape(-1, 1),
                       annotations=v)
        result = db.query("Y(i;y:float) :- A(i,j),V(j); y=<<SUM(j)>>.")
        y = np.zeros(2)
        for (i,), value in zip(result.relation.data.tolist(),
                               result.annotations):
            y[i] = value
        assert np.allclose(y, a @ v)

    def test_min_product_semiring(self):
        """(min, ×) composition: the cheapest two-leg path cost."""
        a = np.array([[2.0, 3.0], [5.0, 1.0]])
        b = np.array([[4.0, 0.0], [2.0, 6.0]])
        db = Database()
        load_matrix(db, "A", a)
        load_matrix(db, "B", b)
        result = db.query(
            "D(i,k;c:float) :- A(i,j),B(j,k); c=<<MIN(j)>>.")
        got = {tuple(key): value
               for key, value in zip(result.relation.data.tolist(),
                                     result.annotations)}
        # (0,0): min(2*4, 3*2) = 6 ; (1,1): min(5*0?, ...) b[0,1]=0 drop
        assert got[(0, 0)] == pytest.approx(6.0)
        assert got[(1, 0)] == pytest.approx(2.0)  # min(5*4, 1*2)

    def test_chained_power(self):
        """A^3 via two rule applications."""
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        db = Database()
        load_matrix(db, "A", a)
        db.query("A2(i,k;v:float) :- A(i,j),A(j,k); v=<<SUM(j)>>.")
        result = db.query(
            "A3(i,k;v:float) :- A2(i,j),A(j,k); v=<<SUM(j)>>.")
        assert np.allclose(to_dense(result, (2, 2)),
                           np.linalg.matrix_power(a, 3))
