"""Path algebras through recursion: the semiring machinery beyond SUM.

The paper positions annotations as general semiring machinery ("message
passing in graphical models", §3.2).  These tests exercise the
max-product (most-reliable-path / Viterbi) and min-product algebras
through the recursive rules, validated against explicit dynamic
programming.
"""

import heapq
import math

import pytest

from repro import Database


def most_reliable_paths(edges, reliabilities, source):
    """Reference: Dijkstra on -log(reliability); returns the best
    product of edge reliabilities from source's edges onward, with the
    paper's SSSP-style initialization (source neighbors seeded by their
    edge's reliability)."""
    adjacency = {}
    for (u, v), r in zip(edges, reliabilities):
        adjacency.setdefault(u, []).append((v, r))
        adjacency.setdefault(v, []).append((u, r))
    best = {}
    heap = []
    for v, r in adjacency.get(source, ()):
        heapq.heappush(heap, (-r, v))
    while heap:
        negative, node = heapq.heappop(heap)
        reliability = -negative
        if node in best:
            continue
        best[node] = reliability
        for neighbor, r in adjacency.get(node, ()):
            if neighbor not in best:
                heapq.heappush(heap, (-(reliability * r), neighbor))
    return best


EDGES = [("s", "a"), ("s", "b"), ("a", "b"), ("a", "c"), ("b", "c"),
         ("c", "d")]
RELIABILITY = [0.9, 0.5, 0.9, 0.3, 0.8, 0.95]


class TestMaxProductReliability:
    def build(self):
        db = Database()
        # Each direction carries the edge's reliability annotation.
        tuples = []
        annotations = []
        for (u, v), r in zip(EDGES, RELIABILITY):
            tuples.extend([(u, v), (v, u)])
            annotations.extend([r, r])
        db.add_relation("Edge", tuples, annotations=annotations)
        return db

    def test_matches_dijkstra_on_log_space(self):
        db = self.build()
        got = db.query("""
            Rel(x;r:float) :- Edge('s',x); r=<<MAX(x)>>.
            Rel(x;r:float)* :- Edge(w,x),Rel(w); r=<<MAX(w)>>.
        """).to_dict()
        expected = most_reliable_paths(EDGES, RELIABILITY, "s")
        assert set(got) == set(expected)
        for node, value in expected.items():
            assert got[node] == pytest.approx(value)

    def test_known_values(self):
        db = self.build()
        got = db.query("""
            Rel(x;r:float) :- Edge('s',x); r=<<MAX(x)>>.
            Rel(x;r:float)* :- Edge(w,x),Rel(w); r=<<MAX(w)>>.
        """).to_dict()
        # s->a direct 0.9 beats s->b->a 0.45; c best via a->b->c?
        assert got["a"] == pytest.approx(0.9)
        assert got["b"] == pytest.approx(0.81)   # s->a->b = 0.9*0.9
        assert got["c"] == pytest.approx(0.9 * 0.9 * 0.8)
        assert got["d"] == pytest.approx(0.9 * 0.9 * 0.8 * 0.95)

    def test_parallel_edges_merge_with_combine_policy(self):
        """Relations are sets: parallel edges merge at load time under
        an explicit combine policy (here: keep the best reliability)."""
        db = Database()
        db.add_relation("Edge", [("s", "a"), ("s", "a"), ("a", "s")],
                        annotations=[0.3, 0.7, 0.7], combine="max")
        got = db.query(
            "R(x;r:float) :- Edge('s',x); r=<<MAX(x)>>.").to_dict()
        assert got["a"] == pytest.approx(0.7)
        worst = Database()
        worst.add_relation("Edge", [("s", "a"), ("s", "a")],
                           annotations=[0.3, 0.7], combine="min")
        got = worst.query(
            "R(x;r:float) :- Edge('s',x); r=<<MAX(x)>>.").to_dict()
        assert got["a"] == pytest.approx(0.3)


class TestMinProductCost:
    def test_min_product_fixpoint(self):
        """Min-product with factors > 1 is monotone decreasing in MIN:
        cheapest multiplicative cost (e.g. currency conversion chains)."""
        db = Database()
        rates = {("s", "a"): 1.2, ("a", "b"): 1.1, ("s", "b"): 1.5}
        tuples, annotations = [], []
        for (u, v), r in rates.items():
            tuples.extend([(u, v)])
            annotations.extend([r])
        db.add_relation("Edge", tuples, annotations=annotations)
        got = db.query("""
            Cost(x;c:float) :- Edge('s',x); c=<<MIN(x)>>.
            Cost(x;c:float)* :- Edge(w,x),Cost(w); c=<<MIN(w)>>.
        """).to_dict()
        assert got["a"] == pytest.approx(1.2)
        assert got["b"] == pytest.approx(min(1.5, 1.2 * 1.1))
