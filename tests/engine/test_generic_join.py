"""Unit tests for the generic worst-case optimal join (Algorithm 1)."""

import numpy as np
import pytest

from repro.engine import (BagInput, EngineConfig, EXISTS, MIN, SUM,
                          evaluate_bag)
from repro.errors import ExecutionError
from repro.storage import Relation, Trie


def trie_of(rows, annotations=None, key_order=None):
    data = np.asarray(rows, dtype=np.uint32).reshape(
        -1, len(rows[0]) if rows else 2)
    return Trie(Relation("R", data, annotations), key_order=key_order)


def config():
    return EngineConfig()


TRIANGLE_EDGES = [(0, 1), (0, 2), (1, 2), (1, 0), (2, 0), (2, 1),
                  (2, 3), (3, 2)]


def triangle_inputs():
    t = trie_of(TRIANGLE_EDGES)
    return [BagInput(t, ("x", "y")), BagInput(t, ("y", "z")),
            BagInput(t, ("x", "z"))]


class TestMaterialize:
    def test_triangle_listing(self):
        result = evaluate_bag(("x", "y", "z"), 3, triangle_inputs(),
                              EXISTS, config())
        listed = set(map(tuple, result.data.tolist()))
        expected = {(0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0),
                    (2, 0, 1), (2, 1, 0)}
        assert listed == expected

    def test_projection_with_exists(self):
        """out=(x): nodes that participate in a triangle, deduplicated."""
        result = evaluate_bag(("x", "y", "z"), 1, triangle_inputs(),
                              EXISTS, config())
        assert sorted(map(tuple, result.data.tolist())) == [(0,), (1,),
                                                            (2,)]

    def test_empty_input_short_circuits(self):
        empty = Trie(Relation("E", np.empty((0, 2), dtype=np.uint32)))
        inputs = [BagInput(empty, ("x", "y"))]
        result = evaluate_bag(("x", "y"), 2, inputs, EXISTS, config())
        assert result.cardinality == 0


class TestAggregation:
    def test_triangle_count_scalar(self):
        result = evaluate_bag(("x", "y", "z"), 0, triangle_inputs(),
                              SUM, config())
        assert result.scalar == 6.0

    def test_per_key_count(self):
        result = evaluate_bag(("x", "y", "z"), 1, triangle_inputs(),
                              SUM, config())
        counts = {row[0]: ann for row, ann in
                  zip(result.data.tolist(), result.annotations)}
        assert counts == {0: 2.0, 1: 2.0, 2: 2.0}

    def test_annotated_sum(self):
        """SUM over neighbors of annotation products."""
        weights = trie_of([(0, 1), (0, 2), (1, 2)],
                          annotations=np.array([10.0, 20.0, 40.0]))
        inputs = [BagInput(weights, ("x", "y"), annotated=True)]
        result = evaluate_bag(("x", "y"), 1, inputs, SUM, config())
        sums = dict(zip((r[0] for r in result.data.tolist()),
                        result.annotations))
        assert sums == {0: 30.0, 1: 40.0}

    def test_annotated_min_product(self):
        edge = trie_of([(5, 1), (5, 2)])
        dist = Trie(Relation("D", np.asarray([[1], [2]], dtype=np.uint32),
                             np.array([7.0, 3.0])))
        inputs = [BagInput(edge, ("x", "w")),
                  BagInput(dist, ("w",), annotated=True)]
        result = evaluate_bag(("x", "w"), 1, inputs, MIN, config())
        assert result.data.tolist() == [[5]]
        assert result.annotations.tolist() == [3.0]

    def test_two_annotated_inputs_multiply(self):
        left = Trie(Relation("L", np.asarray([[1], [2]], dtype=np.uint32),
                             np.array([2.0, 3.0])))
        right = Trie(Relation("R", np.asarray([[1], [2]],
                                              dtype=np.uint32),
                              np.array([10.0, 100.0])))
        inputs = [BagInput(left, ("z",), annotated=True),
                  BagInput(right, ("z",), annotated=True)]
        result = evaluate_bag(("z",), 0, inputs, SUM, config())
        assert result.scalar == 2.0 * 10.0 + 3.0 * 100.0

    def test_annotation_bound_at_earlier_level(self):
        """An atom whose last variable binds before the final level must
        contribute its annotation at that level."""
        weighted_x = Trie(Relation("W", np.asarray([[0], [1]],
                                                   dtype=np.uint32),
                          np.array([5.0, 7.0])))
        edges = trie_of([(0, 1), (1, 2)])
        inputs = [BagInput(weighted_x, ("x",), annotated=True),
                  BagInput(edges, ("x", "y"))]
        result = evaluate_bag(("x", "y"), 0, inputs, SUM, config())
        assert result.scalar == 5.0 + 7.0


class TestValidation:
    def test_uncovered_attribute_rejected(self):
        t = trie_of([(0, 1)])
        with pytest.raises(ExecutionError):
            evaluate_bag(("x", "q"), 0, [BagInput(t, ("x", "y"))],
                         SUM, config())

    def test_arity_mismatch_rejected(self):
        t = trie_of([(0, 1)])
        with pytest.raises(ExecutionError):
            BagInput(t, ("x",))

    def test_semiring_type_checked(self):
        t = trie_of([(0, 1)])
        with pytest.raises(ExecutionError):
            evaluate_bag(("x", "y"), 0, [BagInput(t, ("x", "y"))],
                         "SUM", config())


class TestCursorsRestoredAcrossBranches:
    def test_backtracking_does_not_corrupt_state(self):
        """Descend/undo must restore cursors so sibling branches see the
        root-level sets (regression guard for the undo stack)."""
        # Two 'x' groups with different neighbor sets.
        t = trie_of([(0, 1), (0, 2), (1, 3)])
        u = trie_of([(1, 9), (2, 9), (3, 9)])
        inputs = [BagInput(t, ("x", "y")), BagInput(u, ("y", "w"))]
        result = evaluate_bag(("x", "y", "w"), 3, inputs, EXISTS, config())
        listed = set(map(tuple, result.data.tolist()))
        assert listed == {(0, 1, 9), (0, 2, 9), (1, 3, 9)}
