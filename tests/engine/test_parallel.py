"""Tests for the parallel (forked) counting driver."""

import pytest

from repro import Database, PlanError
from repro.engine.parallel import parallel_count
from tests.conftest import brute_force_triangles, random_undirected_edges

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.load_graph("Edge", random_undirected_edges(40, 170, seed=9),
                        prune=True)
    return database


class TestCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential(self, db, workers):
        expected = db.query(TRIANGLES).scalar
        assert parallel_count(db, TRIANGLES, workers=workers) == expected

    def test_matches_brute_force(self):
        edges = random_undirected_edges(30, 120, seed=10)
        database = Database()
        database.load_graph("Edge", edges, prune=True)
        got = parallel_count(database, TRIANGLES, workers=3)
        assert got == brute_force_triangles(edges)

    def test_four_clique(self, db):
        query = ("K(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),"
                 "Edge(x,u),Edge(y,u),Edge(z,u); w=<<COUNT(*)>>.")
        assert parallel_count(db, query, workers=3) == \
            db.query(query).scalar

    def test_expression_applied_once(self, db):
        query = ("T(;w:float) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                 "w=2*<<COUNT(*)>>+1.")
        assert parallel_count(db, query, workers=2) == \
            db.query(query).scalar

    def test_more_workers_than_candidates(self):
        database = Database()
        database.load_graph("Edge", [(0, 1), (1, 2), (0, 2)], prune=True)
        assert parallel_count(database, TRIANGLES, workers=16) == 1.0

    def test_empty_graph(self):
        import numpy as np
        database = Database()
        database.add_encoded("Edge", np.empty((0, 2), dtype=np.uint32))
        assert parallel_count(database, TRIANGLES, workers=2) == 0.0


class TestScope:
    def test_materialize_rejected(self, db):
        with pytest.raises(PlanError):
            parallel_count(db, "Q(x,y) :- Edge(x,y).")

    def test_keyed_head_rejected(self, db):
        with pytest.raises(PlanError):
            parallel_count(
                db, "D(x;c:int) :- Edge(x,y); c=<<COUNT(*)>>.")

    def test_recursion_rejected(self, db):
        db.query("P(x,y) :- Edge(x,y).")
        with pytest.raises(PlanError):
            parallel_count(
                db, "P(;c:long)* :- Edge(x,y),P(y,x); c=<<COUNT(*)>>.")

    def test_count_distinct_rejected(self, db):
        with pytest.raises(PlanError):
            parallel_count(db, "N(;c:int) :- Edge(x,y); c=<<COUNT(x)>>.")
