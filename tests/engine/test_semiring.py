"""Unit tests for semiring aggregation machinery."""

import math

import numpy as np
import pytest

from repro.engine import (COUNT, EXISTS, MAX, MIN, SUM, is_monotone,
                          semiring_for)


class TestSemirings:
    def test_lookup_by_name(self):
        assert semiring_for("sum") is SUM
        assert semiring_for("MIN") is MIN
        assert semiring_for("Max") is MAX
        assert semiring_for("COUNT") is COUNT

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            semiring_for("AVG")

    def test_identities(self):
        assert SUM.zero == 0.0
        assert MIN.zero == math.inf
        assert MAX.zero == -math.inf
        assert SUM.plus(SUM.zero, 5.0) == 5.0
        assert MIN.plus(MIN.zero, 5.0) == 5.0
        assert MAX.plus(MAX.zero, 5.0) == 5.0

    def test_fold_leaf(self):
        values = np.array([3.0, 1.0, 2.0])
        assert SUM.fold_leaf(values) == 6.0
        assert MIN.fold_leaf(values) == 1.0
        assert MAX.fold_leaf(values) == 3.0
        assert SUM.fold_leaf(np.empty(0)) == 0.0
        assert MIN.fold_leaf(np.empty(0)) == math.inf

    def test_exists(self):
        assert EXISTS.fold_leaf(np.array([0.5])) == 1.0
        assert EXISTS.fold_leaf(np.empty(0)) == 0.0
        assert EXISTS.plus(0.0, 1.0) == 1.0

    def test_monotonicity_classification(self):
        assert is_monotone("MIN")
        assert is_monotone("max")
        assert not is_monotone("SUM")
        assert not is_monotone("COUNT")
