"""Fused block kernels vs the per-tuple oracles, across set layouts.

The fused executor (:mod:`repro.engine.fused`) replaces the generated
per-tuple loop nest with vectorized ``searchsorted`` sweeps over flat
trie arrays.  Its contract is bit-exactness against the per-tuple
compiled path (same value *types*, e.g. exact ``int`` COUNT folds) and
value-level agreement with the interpreter — on every set layout the
optimizer can choose, since the kernel reads ``Trie.sorted_data``
directly and must stay independent of the per-node layout decisions.
"""

import numpy as np
import pytest

from repro import Database
from repro.engine.codegen import generate_bag_plan
from repro.engine.fused import FUSED_SEMIRINGS, fusable
from repro.graphs import chung_lu_graph, uniform_graph

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
TRIANGLE_LIST = "Q(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z)."
PER_VERTEX = ("D(x;c:long) :- Edge(x,y),Edge(x,z),Edge(y,z); "
              "c=<<COUNT(*)>>.")
FOUR_CLIQUE = ("K(;w:long) :- Edge(x,y),Edge(x,z),Edge(x,u),"
               "Edge(y,z),Edge(y,u),Edge(z,u); w=<<COUNT(*)>>.")

LAYOUTS = ("set", "uint_only", "bitset_only", "block")

POWER_LAW = [tuple(e) for e in chung_lu_graph(220, 1600, exponent=1.7,
                                              seed=9)]
UNIFORM = [tuple(e) for e in uniform_graph(100, 420, seed=21)]


def make_pair(layout, edges):
    """(interpreted, fused) databases over the same graph and layout."""
    interp = Database(execution_mode="interpreted", layout_level=layout)
    fused = Database(execution_mode="compiled", fused_kernels=True,
                     layout_level=layout)
    for db in (interp, fused):
        db.load_graph("Edge", edges, prune=True)
    return interp, fused


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("edges", [POWER_LAW, UNIFORM],
                         ids=["powerlaw", "uniform"])
class TestLayoutParity:
    def test_scalar_counts(self, layout, edges):
        interp, fused = make_pair(layout, edges)
        for query in (TRIANGLES, FOUR_CLIQUE):
            expected = interp.query(query).scalar
            got = fused.query(query).scalar
            assert got == expected, (layout, query)
        assert fused.last_stats.fused_blocks >= 1

    def test_materialized_rows_identical(self, layout, edges):
        interp, fused = make_pair(layout, edges)
        expected = interp.query(TRIANGLE_LIST)
        got = fused.query(TRIANGLE_LIST)
        assert np.array_equal(got.relation.data, expected.relation.data)

    def test_grouped_aggregate(self, layout, edges):
        interp, fused = make_pair(layout, edges)
        expected = interp.query(PER_VERTEX)
        got = fused.query(PER_VERTEX)
        assert np.array_equal(got.relation.data, expected.relation.data)
        assert np.allclose(got.annotations, expected.annotations)


class TestFusedTyping:
    def test_count_fold_is_exact_int(self):
        """Unannotated COUNT folds as an int accumulator — the fused
        path matches the per-tuple compiled oracle's value type."""
        compiled = Database(execution_mode="compiled")
        fused = Database(execution_mode="compiled", fused_kernels=True)
        for db in (compiled, fused):
            db.load_graph("Edge", UNIFORM, prune=True)
        a = compiled.query(TRIANGLES).scalar
        b = fused.query(TRIANGLES).scalar
        assert b == a
        assert type(b) is type(a)


class TestFusability:
    def test_supported_semirings_are_the_documented_set(self):
        assert FUSED_SEMIRINGS == ("SUM", "COUNT", "MIN", "MAX",
                                   "EXISTS")

    def test_unfusable_spec_returns_per_tuple_plan(self):
        """Arity-3 inputs have no flat trie view; the fused entry point
        must hand back the untouched per-tuple plan."""
        from repro.engine.semiring import COUNT as semiring
        fused_plan = generate_bag_plan(
            ("x", "y", "z"), 0,
            [_spec(("x", "y", "z"))], semiring, fused=True)
        assert not fused_plan.fused
        assert not fusable(("x", "y", "z"), 0,
                           [_spec(("x", "y", "z"))], semiring)


def _spec(variables):
    """Minimal stand-in matching the InputSpec surface ``fusable`` and
    ``generate_bag_plan`` read (name/variables/annotated)."""
    from repro.engine.codegen import InputSpec
    return InputSpec("R", tuple(variables))


class TestSkewSweep:
    """The calibrated skew-aware probe sweep (``_sweep_expand``).

    ``R(x),S(x,y),T(y)`` puts a root part (``T``, first var at level
    ``y``) next to a high-fanout generator (``S``): with a calibrated
    ``fused_probe_crossover`` the kernel tiles ``T``'s keys instead of
    materializing ``S``'s full expansion.  Contract: same results, a
    ``fused_sweep`` charge instead of a ``fused_block`` one.
    """

    QUERY = "Q(;w:long) :- R(x),S(x,y),T(y); w=<<COUNT(*)>>."
    FANOUT = 96
    XS = 48

    @classmethod
    def load(cls, db):
        # Every x relates to every y: per-x fanout (96) dwarfs |T| (8),
        # so expansion totals 48*96 rows vs a 48*8 sweep.
        db.add_relation("R", [(x,) for x in range(cls.XS)], arity=1)
        db.add_relation("S", [(x, y) for x in range(cls.XS)
                              for y in range(cls.FANOUT)])
        db.add_relation("T", [(y,) for y in range(0, 64, 8)], arity=1)
        return db

    def sweep_profile(self):
        from repro.tune.profile import TuningProfile
        return TuningProfile(fused_probe_crossover=1.0)

    def test_sweep_fires_and_is_charged(self):
        db = self.load(Database(execution_mode="compiled",
                                fused_kernels=True, adaptive=True,
                                tuning=self.sweep_profile()))
        db.query(self.QUERY)
        assert "fused_sweep" in db.counter.by_algorithm

    def test_default_path_never_sweeps(self):
        db = self.load(Database(execution_mode="compiled",
                                fused_kernels=True))
        db.query(self.QUERY)
        assert "fused_sweep" not in db.counter.by_algorithm
        assert "fused_block" in db.counter.by_algorithm

    def test_sweep_results_bit_identical(self):
        plain = self.load(Database(execution_mode="compiled",
                                   fused_kernels=True))
        swept = self.load(Database(execution_mode="compiled",
                                   fused_kernels=True, adaptive=True,
                                   tuning=self.sweep_profile()))
        interp = self.load(Database())
        expected = interp.query(self.QUERY).scalar
        assert plain.query(self.QUERY).scalar == expected
        assert swept.query(self.QUERY).scalar == expected

    def test_sweep_parity_on_materialized_rows(self):
        query = "Q(x,y) :- R(x),S(x,y),T(y)."
        plain = self.load(Database(execution_mode="compiled",
                                   fused_kernels=True))
        swept = self.load(Database(execution_mode="compiled",
                                   fused_kernels=True, adaptive=True,
                                   tuning=self.sweep_profile()))
        assert sorted(plain.query(query).tuples()) \
            == sorted(swept.query(query).tuples())
        assert "fused_sweep" in swept.counter.by_algorithm
