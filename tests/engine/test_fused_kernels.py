"""Fused block kernels vs the per-tuple oracles, across set layouts.

The fused executor (:mod:`repro.engine.fused`) replaces the generated
per-tuple loop nest with vectorized ``searchsorted`` sweeps over flat
trie arrays.  Its contract is bit-exactness against the per-tuple
compiled path (same value *types*, e.g. exact ``int`` COUNT folds) and
value-level agreement with the interpreter — on every set layout the
optimizer can choose, since the kernel reads ``Trie.sorted_data``
directly and must stay independent of the per-node layout decisions.
"""

import numpy as np
import pytest

from repro import Database
from repro.engine.codegen import generate_bag_plan
from repro.engine.fused import FUSED_SEMIRINGS, fusable
from repro.graphs import chung_lu_graph, uniform_graph

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
TRIANGLE_LIST = "Q(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z)."
PER_VERTEX = ("D(x;c:long) :- Edge(x,y),Edge(x,z),Edge(y,z); "
              "c=<<COUNT(*)>>.")
FOUR_CLIQUE = ("K(;w:long) :- Edge(x,y),Edge(x,z),Edge(x,u),"
               "Edge(y,z),Edge(y,u),Edge(z,u); w=<<COUNT(*)>>.")

LAYOUTS = ("set", "uint_only", "bitset_only", "block")

POWER_LAW = [tuple(e) for e in chung_lu_graph(220, 1600, exponent=1.7,
                                              seed=9)]
UNIFORM = [tuple(e) for e in uniform_graph(100, 420, seed=21)]


def make_pair(layout, edges):
    """(interpreted, fused) databases over the same graph and layout."""
    interp = Database(execution_mode="interpreted", layout_level=layout)
    fused = Database(execution_mode="compiled", fused_kernels=True,
                     layout_level=layout)
    for db in (interp, fused):
        db.load_graph("Edge", edges, prune=True)
    return interp, fused


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("edges", [POWER_LAW, UNIFORM],
                         ids=["powerlaw", "uniform"])
class TestLayoutParity:
    def test_scalar_counts(self, layout, edges):
        interp, fused = make_pair(layout, edges)
        for query in (TRIANGLES, FOUR_CLIQUE):
            expected = interp.query(query).scalar
            got = fused.query(query).scalar
            assert got == expected, (layout, query)
        assert fused.last_stats.fused_blocks >= 1

    def test_materialized_rows_identical(self, layout, edges):
        interp, fused = make_pair(layout, edges)
        expected = interp.query(TRIANGLE_LIST)
        got = fused.query(TRIANGLE_LIST)
        assert np.array_equal(got.relation.data, expected.relation.data)

    def test_grouped_aggregate(self, layout, edges):
        interp, fused = make_pair(layout, edges)
        expected = interp.query(PER_VERTEX)
        got = fused.query(PER_VERTEX)
        assert np.array_equal(got.relation.data, expected.relation.data)
        assert np.allclose(got.annotations, expected.annotations)


class TestFusedTyping:
    def test_count_fold_is_exact_int(self):
        """Unannotated COUNT folds as an int accumulator — the fused
        path matches the per-tuple compiled oracle's value type."""
        compiled = Database(execution_mode="compiled")
        fused = Database(execution_mode="compiled", fused_kernels=True)
        for db in (compiled, fused):
            db.load_graph("Edge", UNIFORM, prune=True)
        a = compiled.query(TRIANGLES).scalar
        b = fused.query(TRIANGLES).scalar
        assert b == a
        assert type(b) is type(a)


class TestFusability:
    def test_supported_semirings_are_the_documented_set(self):
        assert FUSED_SEMIRINGS == ("SUM", "COUNT", "MIN", "MAX",
                                   "EXISTS")

    def test_unfusable_spec_returns_per_tuple_plan(self):
        """Arity-3 inputs have no flat trie view; the fused entry point
        must hand back the untouched per-tuple plan."""
        from repro.engine.semiring import COUNT as semiring
        fused_plan = generate_bag_plan(
            ("x", "y", "z"), 0,
            [_spec(("x", "y", "z"))], semiring, fused=True)
        assert not fused_plan.fused
        assert not fusable(("x", "y", "z"), 0,
                           [_spec(("x", "y", "z"))], semiring)


def _spec(variables):
    """Minimal stand-in matching the InputSpec surface ``fusable`` and
    ``generate_bag_plan`` read (name/variables/annotated)."""
    from repro.engine.codegen import InputSpec
    return InputSpec("R", tuple(variables))
