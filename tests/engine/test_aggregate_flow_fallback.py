"""Tests for the aggregate-mode GHD fallback.

Early aggregation requires each bag's head attributes to be visible to
its parent; when a decomposition violates that, the executor must fall
back to the (always correct) single-node plan rather than compute a
wrong answer.  These tests pick queries whose natural GHDs split the
head across bags and validate against brute force.
"""

import pytest

from repro import Database
from tests.conftest import random_undirected_edges
from tests.reference import evaluate_conjunctive


@pytest.fixture(scope="module")
def db():
    database = Database(ordering="identity")
    database.load_graph("Edge", random_undirected_edges(11, 22, seed=3),
                        undirected=True)
    return database


def edge_tuples(db):
    """Edge tuples in the *decoded* domain, matching Result.to_dict."""
    return list(db.relation("Edge").decoded_tuples())


class TestHeadSpansBags:
    def test_path_endpoints_count(self, db):
        """Head (a, d) of a 3-path: a and d live in different bags of
        the min-width GHD."""
        result = db.query(
            "Q(a,d;c:long) :- Edge(a,b),Edge(b,c),Edge(c,d); "
            "c=<<COUNT(*)>>.")
        tuples = edge_tuples(db)
        expected = evaluate_conjunctive(
            [tuples] * 3, [("a", "b"), ("b", "c"), ("c", "d")],
            ["a", "d"], aggregate="COUNT*")
        got = {k: v for k, v in result.to_dict().items()}
        assert got == expected

    def test_lollipop_tail_and_triangle_vertex(self, db):
        """Head mixes a triangle attribute and the tail attribute."""
        result = db.query(
            "Q(y,u;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u); "
            "c=<<COUNT(*)>>.")
        tuples = edge_tuples(db)
        expected = evaluate_conjunctive(
            [tuples] * 4,
            [("x", "y"), ("y", "z"), ("x", "z"), ("x", "u")],
            ["y", "u"], aggregate="COUNT*")
        assert result.to_dict() == expected

    def test_sum_across_bags(self, db):
        """Same shape with SUM over annotated edges."""
        import numpy as np
        weighted = Database(ordering="identity")
        tuples = edge_tuples(db)
        annotations = [(a * 7 + b) % 5 + 1.0 for a, b in tuples]
        weighted.add_encoded(
            "W", np.asarray(tuples, dtype=np.uint32),
            annotations=np.asarray(annotations))
        table = {t: x for t, x in zip(tuples, annotations)}
        result = weighted.query(
            "Q(a,c;s:float) :- W(a,b),W(b,c); s=<<SUM(b)>>.")
        expected = evaluate_conjunctive(
            [tuples] * 2, [("a", "b"), ("b", "c")], ["a", "c"],
            aggregate="SUM", annotations=[table] * 2)
        got = result.to_dict()
        assert set(got) == set(expected)
        for key, value in expected.items():
            assert got[key] == pytest.approx(value)
