"""Metrics emitted inside forked morsel workers ship back to the parent.

The lane-attribution contract the tracer already has (worker morsel
spans land on ``worker-N`` lanes) extends to metrics: each forked
worker resets its copy-on-write registry at startup, accumulates its
own observations (``intersection.size`` from the generic join's hot
path), and ships the delta back with its ``done`` message; the parent
merges it into the live registry labeled ``lane=worker-N``.  Without
the shipping, worker-side observations would be silently lost to
copy-on-write.
"""

import pytest

from repro import Database
from repro.engine.parallel import _can_fork
from repro.obs.metrics import MetricsRegistry

from tests.conftest import random_undirected_edges

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")

needs_fork = pytest.mark.skipif(not _can_fork(),
                                reason="platform cannot fork")


def forked_database(**overrides):
    # The static strategy forks one worker per chunk regardless of the
    # visible CPU count, so these tests exercise real forked children
    # even on single-CPU CI runners.
    database = Database(parallel_workers=2, parallel_threshold=0,
                        parallel_strategy="static", **overrides)
    database.load_graph("Edge",
                        random_undirected_edges(40, 200, seed=2),
                        prune=True)
    return database


@needs_fork
class TestWorkerShipping:
    def test_worker_observations_merge_with_lane_labels(self):
        db = forked_database()
        registry = db.enable_metrics()
        db.query(TRIANGLES)
        assert db.last_stats.mode == "forked"
        snap = registry.snapshot()
        lane_series = [key for key in snap["histograms"]
                       if key.startswith("intersection.size{lane=")]
        assert lane_series, "worker observations were lost to fork CoW"
        total = sum(snap["histograms"][key]["count"]
                    for key in lane_series)
        assert total > 0
        # every lane label names a real worker
        workers = db.last_stats.workers
        for key in lane_series:
            lane = key.split("lane=")[1].rstrip("}")
            assert lane.startswith("worker-")
            assert int(lane.split("-")[1]) < workers

    def test_parent_morsel_stats_not_double_counted(self):
        db = forked_database()
        registry = db.enable_metrics()
        db.query(TRIANGLES)
        snap = registry.snapshot()
        # Parent-side morsel accounting stays unlabeled (recorded once
        # from the parent's ExecStats); worker lanes never ship their
        # own morsel counters, so no labeled twin exists.
        assert "parallel.morsels" in snap["counters"]
        assert not any(key.startswith("parallel.morsels{")
                       for key in snap["counters"])

    def test_disabled_metrics_ship_nothing(self):
        db = forked_database()
        db.query(TRIANGLES)  # metrics never enabled
        assert db.last_stats.mode == "forked"
        assert db.metrics.snapshot()["counters"] == {}

    def test_worker_reset_keeps_parent_instruments(self):
        # The child's reset() must not leak into the parent: parent
        # counters recorded before the query survive it.
        db = forked_database()
        registry = db.enable_metrics()
        registry.inc("sentinel", 7)
        db.query(TRIANGLES)
        assert registry.snapshot()["counters"]["sentinel"] == 7


class TestMergeSemantics:
    def test_merge_state_is_associative_across_workers(self):
        # Simulate two workers' deltas merging into one parent.
        parent = MetricsRegistry()
        for worker_id in range(2):
            child = MetricsRegistry()
            child.observe("intersection.size", 4 + worker_id)
            parent.merge_state(child.to_state(),
                               labels={"lane": "worker-%d" % worker_id})
        snap = parent.snapshot()["histograms"]
        assert snap["intersection.size{lane=worker-0}"]["count"] == 1
        assert snap["intersection.size{lane=worker-1}"]["count"] == 1
