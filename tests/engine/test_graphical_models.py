"""Sum-product / max-product inference as aggregated joins (§3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database


def load_factor(db, name, table):
    indexes = np.stack(np.nonzero(table), axis=1).astype(np.uint32)
    db.add_encoded(name, indexes, annotations=table[np.nonzero(table)])


def chain_db(phi_ab, phi_bc, phi_cd):
    db = Database()
    load_factor(db, "AB", phi_ab)
    load_factor(db, "BC", phi_bc)
    load_factor(db, "CD", phi_cd)
    return db


factor_strategy = st.integers(0, 2 ** 31).map(
    lambda seed: np.random.default_rng(seed).random((3, 3)) + 0.05)


class TestChainInference:
    @given(a=factor_strategy, b=factor_strategy, c=factor_strategy)
    @settings(max_examples=20, deadline=None)
    def test_marginal_matches_einsum(self, a, b, c):
        db = chain_db(a, b, c)
        marginal = db.query(
            "M(d;p:float) :- AB(x,y),BC(y,z),CD(z,d); p=<<SUM(x)>>."
        ).to_dict()
        expected = np.einsum("ab,bc,cd->d", a, b, c)
        for state in range(3):
            assert marginal[state] == pytest.approx(expected[state])

    @given(a=factor_strategy, b=factor_strategy, c=factor_strategy)
    @settings(max_examples=15, deadline=None)
    def test_partition_function(self, a, b, c):
        db = chain_db(a, b, c)
        z = db.query("Z(;p:float) :- AB(x,y),BC(y,z),CD(z,w); "
                     "p=<<SUM(x)>>.").scalar
        assert z == pytest.approx(float(np.einsum("ab,bc,cd->", a, b, c)))

    @given(a=factor_strategy, b=factor_strategy, c=factor_strategy)
    @settings(max_examples=15, deadline=None)
    def test_viterbi_value(self, a, b, c):
        db = chain_db(a, b, c)
        best = db.query("B(;p:float) :- AB(x,y),BC(y,z),CD(z,w); "
                        "p=<<MAX(x)>>.").scalar
        brute = max(a[i, j] * b[j, k] * c[k, l]
                    for i in range(3) for j in range(3)
                    for k in range(3) for l in range(3))
        assert best == pytest.approx(brute)

    def test_conditioning_by_selection(self):
        rng = np.random.default_rng(4)
        a, b, c = (rng.random((3, 3)) + 0.1 for _ in range(3))
        db = chain_db(a, b, c)
        got = db.query(
            "M(d;p:float) :- AB(1,y),BC(y,z),CD(z,d); p=<<SUM(y)>>."
        ).to_dict()
        expected = np.einsum("b,bc,cd->d", a[1], b, c)
        for state in range(3):
            assert got[state] == pytest.approx(expected[state])

    def test_tree_model(self):
        """A star factor graph: B, C, D all hanging off A."""
        rng = np.random.default_rng(5)
        ab, ac, ad = (rng.random((3, 3)) + 0.1 for _ in range(3))
        db = Database()
        load_factor(db, "AB", ab)
        load_factor(db, "AC", ac)
        load_factor(db, "AD", ad)
        marginal = db.query(
            "M(a;p:float) :- AB(a,b),AC(a,c),AD(a,d); p=<<SUM(b)>>."
        ).to_dict()
        expected = np.einsum("ab,ac,ad->a", ab, ac, ad)
        for state in range(3):
            assert marginal[state] == pytest.approx(expected[state])
