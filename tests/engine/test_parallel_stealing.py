"""Tests for the skew-aware work-stealing parallel executor.

Covers the parity matrix the parallel path must honor (workers=1 vs
workers=4, uniform vs power-law inputs, steal vs static strategies,
aggregate vs materializing heads), the execution-stats surface, the
morsel builder's skew handling, and the ``_SHARED`` fork-state
regression.
"""

import numpy as np
import pytest

from repro import Database, ExecutionError
from repro.engine import parallel
from repro.engine.parallel import (build_morsels, estimate_morsel_costs,
                                   parallel_count)
from repro.graphs import chung_lu_graph, uniform_graph

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
FOUR_CLIQUE = ("K(;w:long) :- Edge(x,y),Edge(x,z),Edge(x,u),"
               "Edge(y,z),Edge(y,u),Edge(z,u); w=<<COUNT(*)>>.")
TRIANGLE_LIST = "Q(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z)."
PER_VERTEX = ("D(x;c:long) :- Edge(x,y),Edge(x,z),Edge(y,z); "
              "c=<<COUNT(*)>>.")

UNIFORM = [tuple(e) for e in uniform_graph(150, 1000, seed=11)]
POWER_LAW = [tuple(e) for e in chung_lu_graph(300, 2400, exponent=1.7,
                                              seed=7)]

needs_fork = pytest.mark.skipif(not parallel._can_fork(),
                                reason="platform cannot fork")


def make_db(edges, **overrides):
    db = Database(**overrides)
    db.load_graph("Edge", edges, prune=True)
    return db


@pytest.fixture(scope="module", params=["uniform", "powerlaw"])
def edge_set(request):
    return UNIFORM if request.param == "uniform" else POWER_LAW


@pytest.fixture(scope="module")
def serial_db(edge_set):
    return make_db(edge_set)


@pytest.fixture(scope="module", params=["steal", "static"])
def parallel_db(request, edge_set):
    return make_db(edge_set, parallel_workers=4, parallel_threshold=4,
                   parallel_strategy=request.param)


class TestParity:
    """workers=1 and workers=4 must agree bit-for-bit."""

    def test_triangle_count(self, serial_db, parallel_db):
        assert parallel_db.query(TRIANGLES).scalar \
            == serial_db.query(TRIANGLES).scalar

    def test_four_clique(self, serial_db, parallel_db):
        assert parallel_db.query(FOUR_CLIQUE).scalar \
            == serial_db.query(FOUR_CLIQUE).scalar

    def test_materializing_head(self, serial_db, parallel_db):
        expected = serial_db.query(TRIANGLE_LIST)
        got = parallel_db.query(TRIANGLE_LIST)
        assert got.count == expected.count
        assert sorted(got.tuples()) == sorted(expected.tuples())

    def test_materializing_head_row_order(self, serial_db, parallel_db):
        """Concatenating morsels in candidate order reproduces the
        serial evaluator's row order exactly, not just as a set."""
        expected = serial_db.query(TRIANGLE_LIST)
        got = parallel_db.query(TRIANGLE_LIST)
        assert np.array_equal(got.relation.data, expected.relation.data)

    def test_keyed_aggregate_head(self, serial_db, parallel_db):
        assert parallel_db.query(PER_VERTEX).to_dict() \
            == serial_db.query(PER_VERTEX).to_dict()

    @pytest.mark.parametrize("op", ["SUM", "MIN", "MAX"])
    def test_annotated_aggregates(self, op, edge_set):
        annotated = [(int(a), int(b)) for a, b in edge_set[:400]]
        weights = [float((i * 3) % 17 + 1) for i in range(len(annotated))]
        query = "S(;w:float) :- W(a,b); w=<<%s(*)>>." % op
        results = []
        for workers in (1, 4):
            db = Database(parallel_workers=workers, parallel_threshold=4)
            db.add_relation("W", annotated, annotations=weights,
                            combine="max")
            results.append(db.query(query).scalar)
        assert results[0] == results[1]

    def test_multi_bag_plan(self, serial_db, parallel_db):
        query = ("B(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),"
                 "Edge(x,p),Edge(p,q),Edge(q,r),Edge(p,r); "
                 "w=<<COUNT(*)>>.")
        assert parallel_db.query(query).scalar \
            == serial_db.query(query).scalar


class TestStats:
    def test_last_stats_populated(self, parallel_db):
        parallel_db.query(TRIANGLES)
        stats = parallel_db.last_stats
        assert stats is not None
        assert stats.n_morsels >= 1
        assert all(m.seconds >= 0.0 for m in stats.morsels)
        assert all(m.size >= 1 for m in stats.morsels)
        assert stats.busy_ratio() >= 1.0
        assert stats.morsel_time_ratio() >= 1.0
        assert stats.steals >= 0
        assert "morsels" in stats.describe()

    def test_serial_query_leaves_no_stats(self, serial_db):
        serial_db.query(TRIANGLES)
        if serial_db.config.execution_mode == "compiled":
            # The compiled pipeline always records its cache counters.
            assert serial_db.last_stats.n_morsels == 0
        else:
            assert serial_db.last_stats is None

    def test_level0_cache_hits_on_repeat(self):
        db = make_db(POWER_LAW, parallel_workers=2, parallel_threshold=4)
        db.query(TRIANGLES)
        first = db.last_stats
        db.query(TRIANGLES)
        second = db.last_stats
        assert first.level0_cache_misses >= 1
        assert second.level0_cache_hits >= 1
        assert second.level0_cache_rate() > 0.0

    def test_worker_lane_ops_recorded(self, parallel_db):
        parallel_db.query(TRIANGLES)
        stats = parallel_db.last_stats
        assert sum(stats.worker_ops.values()) > 0

    def test_executed_plan_marks_parallel_bag(self):
        db = make_db(POWER_LAW, parallel_workers=2, parallel_threshold=4)
        db.query(TRIANGLES)
        executed = db._executor.last_plan
        assert any(bag.parallelized for bag in executed.bags)


class TestMorselBuilder:
    def _degree_inputs(self, edges):
        db = make_db(edges)
        db.query(TRIANGLES)  # warm tries through the cache
        cache = db._trie_cache
        relation = db.relation("Edge")
        trie = cache.get(relation, (0, 1), db.config.layout_level)
        return trie

    def test_hub_gets_own_morsel(self):
        """A candidate whose cost reaches the target must not share."""
        candidates = np.arange(100, dtype=np.uint32)
        costs = np.ones(100)
        costs[40] = 1000.0  # hub
        morsels = build_morsels(candidates, costs, workers=4,
                                morsels_per_worker=4)
        hub_morsels = [m for m in morsels if 40 in m.values]
        assert len(hub_morsels) == 1
        assert hub_morsels[0].values.size == 1

    def test_partition_is_exact(self):
        candidates = np.arange(512, dtype=np.uint32)
        costs = np.ones(512)
        morsels = build_morsels(candidates, costs, workers=4,
                                morsels_per_worker=8)
        rebuilt = np.concatenate([m.values for m in morsels])
        assert np.array_equal(rebuilt, candidates)
        assert len(morsels) >= 16

    def test_costs_track_degree(self):
        trie = self._degree_inputs(POWER_LAW)
        from repro.engine.generic_join import BagInput
        bag_input = BagInput(trie, ("x", "y"))
        candidates = trie.root.set.to_array()
        costs = estimate_morsel_costs(candidates, [bag_input], "x")
        degrees = np.fromiter(
            (child.set.cardinality for child in trie.root.children),
            dtype=np.float64)
        assert np.array_equal(costs, degrees + 1.0)


@needs_fork
class TestSharedStateRegression:
    """A worker exception must tear down cleanly: no stale ``_SHARED``
    entries, no zombie workers, and the next query must succeed."""

    def test_worker_failure_cleans_up(self, monkeypatch):
        db = make_db(POWER_LAW, parallel_workers=2, parallel_threshold=4)

        def boom(spec, values):
            raise RuntimeError("injected morsel failure")

        # Pretend the machine has spare cores so the steal scheduler
        # actually forks (it refuses to oversubscribe a 1-CPU host).
        monkeypatch.setattr(parallel, "_available_cpus", lambda: 4)
        monkeypatch.setattr(parallel, "_evaluate_morsel", boom)
        with pytest.raises(ExecutionError, match="injected"):
            db.query(TRIANGLES)
        assert parallel._SHARED == {}
        monkeypatch.undo()
        expected = make_db(POWER_LAW).query(TRIANGLES).scalar
        assert db.query(TRIANGLES).scalar == expected
        assert parallel._SHARED == {}


class TestValueTypes:
    """Satellite: ``parallel_count`` must not coerce every result
    through ``float`` — the aggregate's value type survives."""

    def test_count_type_matches_serial(self):
        db = make_db(UNIFORM)
        serial = db.query(TRIANGLES).scalar
        got = parallel_count(db, TRIANGLES, workers=2)
        assert got == serial
        assert type(got) is type(serial)

    def test_numpy_scalars_unwrapped(self):
        db = make_db(UNIFORM)
        got = parallel_count(db, TRIANGLES, workers=2)
        assert not isinstance(got, np.generic)

    @pytest.mark.parametrize("op", ["MIN", "MAX"])
    def test_min_max_preserve_value(self, op):
        db = Database(parallel_threshold=2)
        pairs = [(i, (i * 5) % 23) for i in range(60)]
        weights = [float((i * 7) % 19 + 1) for i in range(60)]
        db.add_relation("W", pairs, annotations=weights, combine="max")
        query = "S(;w:float) :- W(a,b); w=<<%s(*)>>." % op
        serial = db.query(query).scalar
        got = parallel_count(db, query, workers=3)
        assert got == serial
        assert isinstance(got, float)


class TestStrategies:
    def test_static_strategy_matches(self):
        serial = make_db(POWER_LAW).query(TRIANGLES).scalar
        db = make_db(POWER_LAW, parallel_workers=4, parallel_threshold=4,
                     parallel_strategy="static")
        assert db.query(TRIANGLES).scalar == serial
        assert db.last_stats.strategy == "static"
        assert db.last_stats.steals == 0

    def test_steal_strategy_records_mode(self):
        db = make_db(POWER_LAW, parallel_workers=4, parallel_threshold=4)
        db.query(TRIANGLES)
        assert db.last_stats.mode in ("forked", "inline")

    def test_below_threshold_runs_serial(self):
        db = make_db(UNIFORM, parallel_workers=4,
                     parallel_threshold=10 ** 6)
        serial = make_db(UNIFORM).query(TRIANGLES).scalar
        assert db.query(TRIANGLES).scalar == serial
        assert db.last_stats.mode == "serial"


class TestThresholdUnits:
    """``Config.parallel_threshold`` counts *raw level-0 candidates* —
    not degree-weighted morsel costs.  The serial gate is
    ``candidates.size < max(threshold, 2)``, so a bag whose candidate
    count equals the threshold still goes parallel and one candidate
    short of it stays serial.  This regression test pins both the units
    and the boundary so a future switch to cost-weighted units has to
    change it deliberately (see the ``parallel_threshold`` docstring in
    ``repro/engine/config.py``)."""

    @staticmethod
    def _candidate_count(monkeypatch):
        """Level-0 candidate count for TRIANGLES on UNIFORM, read back
        from the morsel stats of an always-parallel probe run."""
        probe = make_db(UNIFORM, parallel_workers=2,
                        parallel_threshold=0)
        probe.query(TRIANGLES)
        return sum(m.size for m in probe.last_stats.morsels)

    def test_threshold_is_raw_candidate_count_boundary(self,
                                                       monkeypatch):
        # Inline mode keeps the scheduling decision observable without
        # fork noise: parallel runs report "inline", gated runs
        # "serial".
        monkeypatch.setattr(parallel, "_available_cpus", lambda: 1)
        candidates = self._candidate_count(monkeypatch)
        assert candidates > 2
        serial = make_db(UNIFORM).query(TRIANGLES).scalar

        at = make_db(UNIFORM, parallel_workers=2,
                     parallel_threshold=candidates)
        assert at.query(TRIANGLES).scalar == serial
        assert at.last_stats.mode == "inline", \
            "candidates == threshold must still run parallel"

        above = make_db(UNIFORM, parallel_workers=2,
                        parallel_threshold=candidates + 1)
        assert above.query(TRIANGLES).scalar == serial
        assert above.last_stats.mode == "serial", \
            "candidates < threshold must stay serial"

    def test_threshold_floor_of_two(self, monkeypatch):
        """threshold <= 1 still refuses to parallelize a 1-candidate
        bag (``max(threshold, 2)`` floor)."""
        monkeypatch.setattr(parallel, "_available_cpus", lambda: 1)
        db = Database(parallel_workers=2, parallel_threshold=0)
        db.add_relation("E", [(0, 1)])
        db.query("O(;w:long) :- E(x,y); w=<<COUNT(*)>>.")
        assert db.last_stats.mode == "serial"


class TestCpuClamp:
    """The steal scheduler never forks more workers than the host has
    CPUs — morsel granularity is independent of worker count, so extra
    forks on a saturated machine only add timesharing overhead."""

    def test_single_cpu_runs_inline(self, monkeypatch):
        monkeypatch.setattr(parallel, "_available_cpus", lambda: 1)
        serial = make_db(POWER_LAW).query(TRIANGLES).scalar
        db = make_db(POWER_LAW, parallel_workers=4, parallel_threshold=4)
        assert db.query(TRIANGLES).scalar == serial
        assert db.last_stats.mode == "inline"
        assert db.last_stats.workers == 1
        assert db.last_stats.n_morsels > 1  # morsels survive the clamp

    @needs_fork
    def test_workers_clamped_to_cpus(self, monkeypatch):
        monkeypatch.setattr(parallel, "_available_cpus", lambda: 2)
        serial = make_db(POWER_LAW).query(TRIANGLES).scalar
        db = make_db(POWER_LAW, parallel_workers=4, parallel_threshold=4)
        assert db.query(TRIANGLES).scalar == serial
        assert db.last_stats.mode == "forked"
        assert db.last_stats.workers == 2
