"""Mispredict-driven re-planning (the adaptive tentpole's feedback loop).

A deliberately wrong cardinality hint makes the planner's per-bag op
prediction collapse; under ``adaptive=True`` the executor detects the
divergence (actual lane ops beyond ``replan_factor`` x predicted),
evicts the cached plan, harvests the *observed* cardinalities as
feedback, and the next execution re-plans from reality.  Results must
be bit-identical before and after — re-planning changes cost, never
answers.
"""

import pytest

from repro import Database
from repro.graphs import chung_lu_graph

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
EDGES = [tuple(e) for e in chung_lu_graph(200, 1500, exponent=1.7,
                                          seed=5)]


def make_db(**overrides):
    db = Database(**overrides)
    db.load_graph("Edge", EDGES, prune=True)
    return db


class TestReplanTrigger:
    def test_wrong_hint_triggers_exactly_one_replan(self):
        db = make_db(adaptive=True)
        db.set_cardinality_hint("Edge", 4)  # wildly wrong
        first = db.query(TRIANGLES).scalar
        assert db._executor.replans == 1
        assert db._executor.last_mispredict_ratio \
            > db.config.replan_factor
        # Observed cardinality harvested as feedback for the re-plan.
        assert db._executor.card_feedback.get("Edge") == \
            db.relation("Edge").cardinality
        # The re-planned run settles: same answer, no further replans.
        second = db.query(TRIANGLES).scalar
        assert second == first
        assert db._executor.replans == 1

    def test_replan_evicts_the_cached_plan(self):
        db = make_db(adaptive=True, execution_mode="compiled")
        db.set_cardinality_hint("Edge", 4)
        first = db.query(TRIANGLES).scalar
        assert db._executor.replans == 1
        # The mispredicted rule was surgically evicted from the cache.
        assert db._executor.plans.sizes()["rules"] == 0
        second = db.query(TRIANGLES).scalar
        # The re-plan (with feedback) predicted accurately and stuck.
        assert second == first
        assert db._executor.replans == 1
        assert db._executor.plans.sizes()["rules"] == 1

    def test_accurate_hint_never_replans(self):
        db = make_db(adaptive=True)
        db.set_cardinality_hint("Edge",
                                db.relation("Edge").cardinality)
        db.query(TRIANGLES)
        assert db._executor.replans == 0

    def test_no_hint_no_replan(self):
        db = make_db(adaptive=True)
        db.query(TRIANGLES)
        db.query(TRIANGLES)
        assert db._executor.replans == 0

    def test_adaptive_off_ignores_mispredicts(self):
        db = make_db()
        db.set_cardinality_hint("Edge", 4)
        db.query(TRIANGLES)
        assert db._executor.replans == 0
        assert db._executor.last_mispredict_ratio == 0.0

    def test_clear_hints_drops_feedback(self):
        db = make_db(adaptive=True)
        db.set_cardinality_hint("Edge", 4)
        db.query(TRIANGLES)
        assert db._executor.card_feedback
        db.clear_cardinality_hints()
        assert not db._executor.card_hints
        assert not db._executor.card_feedback


class TestObservability:
    def test_metrics_count_replans(self):
        db = make_db(adaptive=True)
        db.enable_metrics()
        db.set_cardinality_hint("Edge", 4)
        db.query(TRIANGLES)
        registry = db.metrics
        assert registry.counter("tuning.replans").value >= 1
        assert registry.gauge("tuning.mispredict_ratio").value \
            > db.config.replan_factor

    def test_explain_analyze_renders_adaptive_footer(self):
        db = make_db(adaptive=True)
        db.set_cardinality_hint("Edge", 4)
        db.query(TRIANGLES)
        text = db.explain_analyze(TRIANGLES)
        assert "adaptive:" in text
        assert "tuning.replans:" in text
        assert "tuning.mispredict_ratio:" in text
        assert "planner estimate:" in text

    def test_explain_analyze_silent_without_adaptive(self):
        db = make_db()
        text = db.explain_analyze(TRIANGLES)
        assert "tuning.replans" not in text


class TestBitIdentical:
    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_replanned_results_match_default_engine(self, mode):
        query = "Q(x,z) :- Edge(x,y),Edge(y,z)."
        plain = make_db(execution_mode=mode)
        expected = sorted(plain.query(query).tuples())
        adaptive = make_db(adaptive=True, execution_mode=mode,
                           replan_factor=1e-6)  # replan on every bag
        first = sorted(adaptive.query(query).tuples())
        second = sorted(adaptive.query(query).tuples())
        assert first == expected
        assert second == expected
        assert adaptive._executor.replans >= 1
