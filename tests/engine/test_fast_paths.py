"""Unit tests for the bag evaluator's vectorized fast paths.

The fast paths must (a) fire on the shapes they claim, (b) never fire
where they don't apply, and (c) agree with the generic recursion
bit-for-bit (the latter is also covered globally by the reference-
equivalence property tests).
"""

import numpy as np
import pytest

from repro.engine import (BagInput, EngineConfig, EXISTS, MIN, SUM,
                          evaluate_bag)
from repro.engine.generic_join import BagEvaluator
from repro.storage import Relation, Trie


def trie_of(rows, annotations=None, key_order=None):
    data = np.asarray(rows, dtype=np.uint32).reshape(-1,
                                                     len(rows[0]))
    return Trie(Relation("R", data, annotations), key_order=key_order)


def unary_trie(values, annotations=None):
    data = np.asarray(values, dtype=np.uint32).reshape(-1, 1)
    return Trie(Relation("U", data, annotations))


PAIRS = [(0, 1), (0, 2), (1, 2), (2, 0), (2, 3)]


class TestTwoLevelFastPath:
    def evaluator(self, inputs, semiring=SUM, simd=True):
        config = EngineConfig(simd=simd)
        return BagEvaluator(("x", "z"), 1, inputs, semiring, config)

    def test_fires_on_pagerank_shape(self):
        edge = trie_of(PAIRS)
        weights = unary_trie([0, 1, 2, 3],
                             annotations=[1.0, 2.0, 4.0, 8.0])
        inputs = [BagInput(edge, ("x", "z")),
                  BagInput(weights, ("z",), annotated=True)]
        evaluator = self.evaluator(inputs)
        assert evaluator._try_vectorized_two_level() is not None
        result = evaluator.run()
        got = dict(zip((r[0] for r in result.data.tolist()),
                       result.annotations))
        assert got == {0: 2.0 + 4.0, 1: 4.0, 2: 1.0 + 8.0}

    def test_matches_generic_recursion(self):
        edge = trie_of(PAIRS)
        weights = unary_trie([1, 2, 3], annotations=[3.0, 5.0, 7.0])
        for semiring in (SUM, MIN):
            inputs = [BagInput(edge, ("x", "z")),
                      BagInput(weights, ("z",), annotated=True)]
            fast = evaluate_bag(("x", "z"), 1, inputs, semiring,
                                EngineConfig(simd=True))
            inputs = [BagInput(edge, ("x", "z")),
                      BagInput(weights, ("z",), annotated=True)]
            slow = evaluate_bag(("x", "z"), 1, inputs, semiring,
                                EngineConfig(simd=False))
            assert fast.data.tolist() == slow.data.tolist()
            assert np.allclose(fast.annotations, slow.annotations)

    def test_unary_over_out_variable_filters_and_scales(self):
        edge = trie_of(PAIRS)
        out_weights = unary_trie([0, 2], annotations=[10.0, 100.0])
        inputs = [BagInput(edge, ("x", "z")),
                  BagInput(out_weights, ("x",), annotated=True)]
        result = self.evaluator(inputs).run()
        got = dict(zip((r[0] for r in result.data.tolist()),
                       result.annotations))
        # x=1 filtered out; sums scaled by the out annotation.
        assert got == {0: 2 * 10.0, 2: 2 * 100.0}

    def test_does_not_fire_with_two_binary_atoms(self):
        edge = trie_of(PAIRS)
        inputs = [BagInput(edge, ("x", "z")),
                  BagInput(trie_of(PAIRS), ("x", "z"))]
        assert self.evaluator(inputs)._try_vectorized_two_level() is None

    def test_does_not_fire_without_simd(self):
        edge = trie_of(PAIRS)
        inputs = [BagInput(edge, ("x", "z"))]
        evaluator = self.evaluator(inputs, simd=False)
        assert evaluator._try_vectorized_two_level() is None

    def test_does_not_fire_on_annotated_binary(self):
        edge = trie_of(PAIRS, annotations=np.arange(5, dtype=float))
        inputs = [BagInput(edge, ("x", "z"), annotated=True)]
        assert self.evaluator(inputs)._try_vectorized_two_level() is None

    def test_empty_after_filter(self):
        edge = trie_of(PAIRS)
        nothing = unary_trie([99])
        inputs = [BagInput(edge, ("x", "z")),
                  BagInput(nothing, ("z",))]
        result = self.evaluator(inputs).run()
        assert result.cardinality == 0

    def test_charges_cost_model(self):
        edge = trie_of(PAIRS)
        config = EngineConfig()
        evaluate_bag(("x", "z"), 1, [BagInput(edge, ("x", "z"))], SUM,
                     config)
        assert config.counter.total_ops > 0


class TestIdentityScan:
    def test_fires_on_single_full_output_atom(self):
        edge = trie_of(PAIRS)
        evaluator = BagEvaluator(("x", "z"), 2,
                                 [BagInput(edge, ("x", "z"))],
                                 EXISTS, EngineConfig())
        fast = evaluator._try_identity_scan()
        assert fast is not None
        assert fast.data.tolist() == sorted([list(p) for p in PAIRS])

    def test_preserves_annotations(self):
        edge = trie_of(PAIRS, annotations=np.arange(5, dtype=float))
        result = evaluate_bag(("x", "z"), 2,
                              [BagInput(edge, ("x", "z"), annotated=True)],
                              EXISTS, EngineConfig())
        assert result.annotations is not None
        assert result.annotations.shape[0] == 5

    def test_does_not_fire_with_projection(self):
        edge = trie_of(PAIRS)
        evaluator = BagEvaluator(("x", "z"), 1,
                                 [BagInput(edge, ("x", "z"))],
                                 EXISTS, EngineConfig())
        assert evaluator._try_identity_scan() is None

    def test_does_not_fire_with_two_atoms(self):
        edge = trie_of(PAIRS)
        evaluator = BagEvaluator(("x", "z"), 2,
                                 [BagInput(edge, ("x", "z")),
                                  BagInput(trie_of(PAIRS), ("x", "z"))],
                                 EXISTS, EngineConfig())
        assert evaluator._try_identity_scan() is None
