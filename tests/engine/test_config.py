"""Unit tests for EngineConfig and ablation plumbing."""

from repro.engine import EngineConfig


class TestConfig:
    def test_paper_defaults(self):
        config = EngineConfig()
        assert config.layout_level == "set"       # §4.4's choice
        assert config.simd
        assert config.adaptive_algorithms
        assert config.use_ghd
        assert config.push_selections
        assert config.eliminate_redundant_bags
        assert config.skip_top_down
        assert config.uint_algorithm is None

    def test_ablated_copies(self):
        base = EngineConfig()
        no_layouts = base.ablated(layout_level="uint_only")
        assert no_layouts.layout_level == "uint_only"
        assert base.layout_level == "set"          # original untouched
        assert no_layouts.counter is not base.counter

    def test_ra_ablation(self):
        """The paper's "-RA": no layout choices AND no algorithm
        adaptivity."""
        config = EngineConfig().ablated(layout_level="uint_only",
                                        adaptive_algorithms=False)
        assert config.layout_level == "uint_only"
        assert not config.adaptive_algorithms
        assert config.simd  # -RA keeps vectorized kernels

    def test_counters_start_clean(self):
        assert EngineConfig().counter.total_ops == 0
