"""Lifecycle and parity tests for the shared-memory trie arena.

``SharedTrieArena`` segments must never outlive their owner: normal
completion, worker crashes, and KeyboardInterrupt all have to unlink
every ``repro_arena_`` entry from ``/dev/shm``, and forked children
must never tear segments out from under the owning process.  The
autouse fixture scans ``/dev/shm`` around every test, so any straggler
fails the test that produced it.
"""

import gc
import os

import numpy as np
import pytest

from repro import Database, ExecutionError
from repro.engine import parallel
from repro.storage.arena import (MIN_SEGMENT_BYTES, SharedTrieArena,
                                 shared_memory_available)
from repro.storage.dictionary import Dictionary
from repro.storage.trie import trie_from_arrays
from repro.graphs import chung_lu_graph

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="platform has no POSIX shared memory")

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
POWER_LAW = [tuple(e) for e in chung_lu_graph(200, 1500, exponent=1.7,
                                              seed=5)]

SHM_DIR = "/dev/shm"


def arena_entries():
    """Live ``repro_arena_`` segment names visible in ``/dev/shm``."""
    if not os.path.isdir(SHM_DIR):
        return set()
    return {name for name in os.listdir(SHM_DIR)
            if name.startswith("repro_arena_")}


@pytest.fixture(autouse=True)
def no_arena_stragglers():
    """Every test must leave ``/dev/shm`` exactly as it found it.

    Compared as a before/after delta (not absolute emptiness) so a
    concurrently-alive database elsewhere in the test session cannot
    cause false positives.
    """
    before = arena_entries()
    yield
    gc.collect()
    leaked = arena_entries() - before
    assert not leaked, \
        "leaked shared-memory segments: %r" % sorted(leaked)


def shared_db(**overrides):
    options = dict(parallel_workers=2, parallel_threshold=4,
                   shared_tries=True)
    options.update(overrides)
    db = Database(**options)
    db.load_graph("Edge", POWER_LAW, prune=True)
    return db


class TestPlacement:
    def test_roundtrip_readonly_aligned(self):
        with SharedTrieArena() as arena:
            first = np.arange(1000, dtype=np.uint32)
            second = np.arange(7, dtype=np.uint64) * 3
            a = arena.place(first)
            b = arena.place(second)
            assert np.array_equal(a, first)
            assert np.array_equal(b, second)
            assert not a.flags.writeable
            assert a.ctypes.data % 64 == 0
            assert b.ctypes.data % 64 == 0
            assert arena.nbytes == first.nbytes + second.nbytes
            assert arena.segment_names

    def test_empty_array_needs_no_segment(self):
        with SharedTrieArena() as arena:
            out = arena.place(np.empty(0, dtype=np.uint32))
            assert out.size == 0
            assert arena.segment_names == []
            assert arena.nbytes == 0

    def test_segments_grow_geometrically(self):
        big = np.zeros(MIN_SEGMENT_BYTES // 4 + 16, dtype=np.uint32)
        with SharedTrieArena() as arena:
            arena.place(np.arange(16, dtype=np.uint32))
            arena.place(big)          # overflows the first segment
            names = arena.segment_names
            assert len(names) == 2
            assert len(set(names)) == 2
            for name in names:
                assert name.startswith("repro_arena_%d_" % os.getpid())

    def test_place_after_close_raises(self):
        arena = SharedTrieArena()
        arena.place(np.arange(4, dtype=np.uint32))
        arena.close()
        with pytest.raises(RuntimeError, match="closed"):
            arena.place(np.arange(4, dtype=np.uint32))


class TestLifecycle:
    def test_close_unlinks_and_is_idempotent(self):
        arena = SharedTrieArena()
        arena.place(np.arange(256, dtype=np.uint32))
        names = set(arena.segment_names)
        assert names <= arena_entries()
        arena.close()
        assert not names & arena_entries()
        arena.close()  # idempotent

    def test_garbage_collection_unlinks(self):
        arena = SharedTrieArena()
        arena.place(np.arange(256, dtype=np.uint32))
        names = set(arena.segment_names)
        del arena
        gc.collect()
        assert not names & arena_entries()

    def test_live_views_survive_close(self):
        """Closing with handed-out views still unlinks the ``/dev/shm``
        entry; the views stay readable (the pages live until the last
        mapping drops at process teardown)."""
        arena = SharedTrieArena()
        view = arena.place(np.arange(512, dtype=np.uint32))
        names = set(arena.segment_names)
        arena.close()
        assert not names & arena_entries()
        assert view[100] == 100

    def test_keyboard_interrupt_unlinks_via_context_manager(self):
        with pytest.raises(KeyboardInterrupt):
            with shared_db() as db:
                db.query(TRIANGLES)
                names = set(db.arena.segment_names)
                assert names <= arena_entries()
                raise KeyboardInterrupt
        assert not names & arena_entries()

    def test_forked_child_cannot_grow_or_unlink(self):
        """A forked worker reads the arena zero-copy but may neither
        grow it nor (on exit) unlink the owner's segments."""
        if not parallel._can_fork():
            pytest.skip("platform cannot fork")
        arena = SharedTrieArena()
        view = arena.place(np.arange(1024, dtype=np.uint32))
        names = set(arena.segment_names)
        pid = os.fork()
        if pid == 0:
            # Child process: never let control return to pytest.
            try:
                assert view[512] == 512          # zero-copy mapping
                try:
                    arena.place(np.arange(8, dtype=np.uint32))
                except RuntimeError:
                    arena.close()   # non-owner close must not unlink
                    os._exit(0)
                os._exit(1)
            except BaseException:
                os._exit(2)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        # The child exited (arena closed there) — the owner's segments
        # must still be linked.
        assert names <= arena_entries()
        arena.close()

    def test_worker_failure_keeps_arena_usable(self, monkeypatch):
        """An injected morsel crash mid-parallel-query must not leak or
        invalidate the arena: the next query still answers correctly
        from shared tries, and ``close()`` reclaims everything."""
        db = shared_db(parallel_threshold=0)
        expected = db.query(TRIANGLES).scalar

        def boom(spec, values):
            raise RuntimeError("injected morsel failure")

        monkeypatch.setattr(parallel, "_available_cpus", lambda: 4)
        monkeypatch.setattr(parallel, "_evaluate_morsel", boom)
        with pytest.raises(ExecutionError, match="injected"):
            db.query(TRIANGLES)
        monkeypatch.undo()
        assert not db.arena.closed
        assert db.query(TRIANGLES).scalar == expected
        db.close()

    def test_database_close_rebuilds_private_tries(self):
        db = shared_db()
        expected = db.query(TRIANGLES).scalar
        assert db.last_stats.shm_bytes_mapped > 0
        db.close()
        assert db.arena.closed
        # Post-close queries rebuild private tries and still agree.
        assert db.query(TRIANGLES).scalar == expected
        assert db.last_stats.shm_bytes_mapped == 0


class TestSharing:
    def test_trie_share_into_preserves_content(self):
        data = np.array([[1, 2], [1, 5], [3, 2], [3, 7], [8, 1]],
                        dtype=np.uint32)
        ann = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        private = trie_from_arrays("R", data, ann)
        shared = trie_from_arrays("R", data, ann)
        with SharedTrieArena() as arena:
            shared.share_into(arena)
            assert arena.nbytes > 0
            assert np.array_equal(shared.sorted_data,
                                  private.sorted_data)
            assert np.array_equal(shared.sorted_annotations,
                                  private.sorted_annotations)
            assert not shared.sorted_data.flags.writeable
            flat_a, flat_b = shared.flat(), private.flat()
            assert np.array_equal(flat_a.keys, flat_b.keys)
            assert np.array_equal(flat_a.offsets, flat_b.offsets)
            assert np.array_equal(flat_a.values, flat_b.values)
            assert np.array_equal(flat_a.packed, flat_b.packed)
            assert sorted(shared.tuples()) == sorted(private.tuples())
            assert shared.contains((3, 7)) and not shared.contains((3, 9))

    def test_high_arity_trie_shares_bulk_arrays_only(self):
        """Arity-3 tries have no flat view; sharing still rebinds the
        sorted tuple array without raising."""
        data = np.array([[1, 2, 3], [1, 2, 4], [5, 6, 7]],
                        dtype=np.uint32)
        trie = trie_from_arrays("R3", data)
        with SharedTrieArena() as arena:
            trie.share_into(arena)
            assert not trie.sorted_data.flags.writeable
            assert sorted(trie.tuples()) == [(1, 2, 3), (1, 2, 4),
                                             (5, 6, 7)]

    def test_dictionary_share_into_roundtrip(self):
        dictionary = Dictionary()
        values = [10, 40, 20, 99]
        keys = [dictionary.encode(v) for v in values]
        with SharedTrieArena() as arena:
            placed = dictionary.share_into(arena)
            assert placed > 0
            assert [dictionary.decode(k) for k in keys] == values


class TestMutationUnderSharedTries:
    """In-place mutation with arena-pinned tries (the satellite for
    ``TrieCache.invalidate`` under ``shared_tries``).

    The arena is a bump allocator — retired tries cannot be freed
    individually, so the cache charges their bytes to ``arena_waste``
    and ``Database._maybe_compact_arena`` eventually re-places every
    live trie into a fresh arena and closes the old one.  The autouse
    ``no_arena_stragglers`` fixture turns any leaked ``/dev/shm``
    segment into a failure.
    """

    def mutable_shared_db(self):
        db = Database(parallel_workers=2, parallel_threshold=4,
                      shared_tries=True)
        db.add_relation("Edge", POWER_LAW)
        return db

    def test_mutation_retires_stale_shared_trie_and_charges_waste(self):
        db = self.mutable_shared_db()
        before = db.query(TRIANGLES).scalar
        assert db.last_stats.shm_bytes_mapped > 0
        cache = db._trie_cache
        assert cache.arena_waste == 0
        db.append("Edge", [(9999, 0), (0, 9999)])
        after = db.query(TRIANGLES).scalar
        # The stale arena-pinned trie was retired (same entry count,
        # new version) and its shared bytes were charged as waste.
        assert cache.arena_waste > 0
        assert after == before  # new node touches no triangle
        db.delete("Edge", [(9999, 0), (0, 9999)])
        assert db.query(TRIANGLES).scalar == before
        db.close()

    def test_invalidate_accounts_arena_pinned_bytes(self):
        db = self.mutable_shared_db()
        db.query(TRIANGLES)
        cache = db._trie_cache
        relation = db.catalog["Edge"]
        pinned = sum(getattr(t, "_shm_bytes", 0)
                     for t in cache._tries.values())
        assert pinned > 0
        cache.invalidate(relation)
        assert cache.arena_waste == pinned
        assert not any(key[0] == relation._trie_uid
                       for key in cache._tries)
        db.close()

    def test_compaction_replaces_arena_and_resets_waste(self):
        db = self.mutable_shared_db()
        db._COMPACT_MIN_WASTE = 1     # drop the 1 MiB floor
        expected_extra = db.query(TRIANGLES).scalar
        first_arena = db.arena
        for step in range(12):
            db.append("Edge", [(10000 + step, 10001 + step)])
            if db.arena is not first_arena:
                break  # compaction just ran inside the append
            db.query(TRIANGLES)
        assert db.arena is not first_arena, "compaction never triggered"
        assert first_arena.closed and not db.arena.closed
        assert db._trie_cache.arena_waste == 0
        # Post-compaction the re-placed tries still answer correctly
        # from shared memory.
        assert db.query(TRIANGLES).scalar == expected_extra
        assert db.last_stats.shm_bytes_mapped > 0
        db.close()

    def test_mutation_parity_with_private_tries(self):
        shared = self.mutable_shared_db()
        private = Database()
        private.add_relation("Edge", POWER_LAW)
        batch = [(1, 190), (190, 3), (1, 3), (42, 42)]
        for db in (shared, private):
            db.query(TRIANGLES)
            db.append("Edge", batch)
        assert shared.query(TRIANGLES).scalar \
            == private.query(TRIANGLES).scalar
        for db in (shared, private):
            db.delete("Edge", batch[:2])
        assert shared.query(TRIANGLES).scalar \
            == private.query(TRIANGLES).scalar
        shared.close()
