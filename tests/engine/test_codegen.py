"""Unit tests for the code-generation phase (paper §3.3)."""

import pytest

from repro import Database
from repro.engine.codegen import compile_count_rule, generate_count_plan
from repro.errors import PlanError
from repro.query import parse_rule
from tests.conftest import random_undirected_edges


def triangle_rule():
    return parse_rule("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                      "w=<<COUNT(*)>>.")


class TestGeneratedSource:
    def test_source_mirrors_example_3_2(self):
        """Generated code must show the paper's loop nest: intersect at
        each level, count at the leaf."""
        db = Database()
        db.load_graph("Edge", random_undirected_edges(20, 60, 1),
                      prune=True)
        generated, _ = compile_count_rule(triangle_rule(), db)
        source = generated.source
        assert source.count("for v") == 2          # x and y loops
        for level in range(3):                     # one candidate set per level
            assert "s%d = " % level in source
        assert "s2.cardinality" in source          # leaf counts, no z loop
        assert "for v2" not in source
        assert "bind 'x'" in source and "bind 'y'" in source
        assert "restrict" in source                # the parallel morsel hook

    def test_generated_matches_interpreter(self):
        for seed in range(3):
            edges = random_undirected_edges(30, 120, seed)
            db = Database()
            db.load_graph("Edge", edges, prune=True)
            generated, tries = compile_count_rule(triangle_rule(), db)
            expected = db.query(
                "T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                "w=<<COUNT(*)>>.").scalar
            assert generated(tries, db.config) == expected

    def test_four_clique_generated(self):
        edges = random_undirected_edges(25, 140, 9)
        db = Database()
        db.load_graph("Edge", edges, prune=True)
        rule = parse_rule(
            "K(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u),"
            "Edge(y,u),Edge(z,u); w=<<COUNT(*)>>.")
        generated, tries = compile_count_rule(rule, db)
        expected = db.query(
            "K(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u),"
            "Edge(y,u),Edge(z,u); w=<<COUNT(*)>>.").scalar
        assert generated(tries, db.config) == expected

    def test_charges_same_counter(self):
        db = Database()
        db.load_graph("Edge", random_undirected_edges(20, 60, 2),
                      prune=True)
        generated, tries = compile_count_rule(triangle_rule(), db)
        before = db.counter.total_ops
        generated(tries, db.config)
        assert db.counter.total_ops > before


class TestScope:
    def test_materialize_rule_rejected(self):
        db = Database()
        db.load_graph("Edge", [(0, 1)], prune=True)
        with pytest.raises(PlanError):
            compile_count_rule(
                parse_rule("T(x,y) :- Edge(x,y)."), db)

    def test_keyed_aggregate_rejected(self):
        db = Database()
        db.load_graph("Edge", [(0, 1)], prune=True)
        with pytest.raises(PlanError):
            compile_count_rule(
                parse_rule("T(x;w:int) :- Edge(x,y); w=<<COUNT(*)>>."),
                db)

    def test_zero_levels_rejected(self):
        with pytest.raises(PlanError):
            generate_count_plan((), [])

    def test_uncovered_attribute_rejected(self):
        with pytest.raises(PlanError):
            generate_count_plan(("x", "q"), [("E", ("x",))])
