"""ExecStats regressions: stranded workers and honest describe() output."""

from repro import Database
from repro.engine.stats import ExecStats

from tests.conftest import random_undirected_edges

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")


class TestStrandedWorkers:
    def test_one_busy_worker_keeps_ratio_finite(self):
        """Regression: when every morsel lands on one worker of a
        multi-worker run, the busy ratio used to divide the lone
        worker's time by the 1e-9 floor and report ~1e9."""
        stats = ExecStats(workers=4, mode="forked")
        for index in range(5):
            stats.record_morsel(index, 0, 10, 1.0, 0.02, lane_ops=100)
        assert stats.busy_ratio() == 1.0
        assert stats.stranded_workers == 3

    def test_stranded_workers_reported_in_describe(self):
        stats = ExecStats(workers=4, mode="forked")
        stats.record_morsel(0, 0, 10, 1.0, 0.02)
        text = stats.describe()
        assert "stranded workers: 3 of 4" in text
        assert "excluded from busy ratio" in text

    def test_no_stranding_on_single_worker_runs(self):
        stats = ExecStats(workers=1, mode="inline")
        stats.record_morsel(0, 0, 10, 1.0, 0.02)
        assert stats.stranded_workers == 0
        assert "stranded" not in stats.describe()

    def test_balanced_run_ratio_unchanged(self):
        stats = ExecStats(workers=2, mode="forked")
        stats.record_morsel(0, 0, 10, 1.0, 0.04)
        stats.record_morsel(1, 1, 10, 1.0, 0.02)
        assert stats.busy_ratio() == 2.0
        assert stats.stranded_workers == 0


class TestDescribeHonesty:
    def test_serial_run_omits_parallel_fields(self):
        """Regression: describe() used to claim strategy=steal even for
        runs that never engaged the parallel executor."""
        stats = ExecStats(mode="serial")
        text = stats.describe()
        assert text.startswith("execution mode: interpreted")
        assert "strategy" not in text
        assert "morsels" not in text

    def test_fast_path_named_explicitly(self):
        stats = ExecStats(mode="fast-path")
        text = stats.describe()
        assert "fast path" in text
        assert "strategy" not in text

    def test_parallel_run_keeps_parallel_fields(self):
        stats = ExecStats(strategy="steal", workers=2, mode="forked")
        stats.record_morsel(0, 0, 10, 1.0, 0.02)
        stats.record_morsel(1, 1, 10, 1.0, 0.02)
        text = stats.describe()
        assert "strategy=steal" in text
        assert "morsels: 2" in text

    def test_compiled_serial_run_mentions_mode_not_strategy(self):
        db = Database(execution_mode="compiled")
        db.load_graph("Edge", random_undirected_edges(20, 60, seed=5),
                      prune=True)
        db.query(TRIANGLES)
        text = db.last_stats.describe()
        assert "execution mode: compiled" in text
        assert "plan cache" in text
        if not db.last_stats.morsels:
            assert "strategy" not in text

    def test_end_to_end_stranded_scenario(self):
        """A 3-worker run over a single-morsel bag strands two workers;
        the ratio must stay 1.0 and the stranding must be reported."""
        db = Database(parallel_workers=3, parallel_threshold=0,
                      parallel_morsels_per_worker=1)
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)], prune=True)
        db.query(TRIANGLES)
        stats = db.last_stats
        if stats is not None and stats.morsels and \
                len(stats.worker_busy) < stats.workers:
            assert stats.busy_ratio() < 1e6
            assert stats.stranded_workers >= 1
            assert "stranded" in stats.describe()
