"""Materialized views and their incremental (semi-naive) maintenance.

Every test cross-checks the live, incrementally-maintained database
against a from-scratch rebuild — the same contract the mutation fuzzer
enforces at scale — and additionally asserts *which* refresh route ran
(``MaterializedView.delta_refreshes`` vs ``refreshes``), so a silent
fall-back to full recomputation fails the test that expected a delta.
"""

import pytest

from repro import Database
from repro.errors import SchemaError
from repro.fuzz.runner import _normalize_relation

EDGES = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")


def snapshot(db, name):
    return _normalize_relation(db.relation(name), db._dictionary)


def rebuild(relations, programs, name, **config):
    """Fresh database, loaded and queried from scratch."""
    db = Database(**config)
    for rel_name, (tuples, annotations) in relations.items():
        db.add_relation(rel_name, list(tuples),
                        annotations=list(annotations)
                        if annotations is not None else None,
                        arity=None if tuples else 2)
    for program in programs:
        db.query(program)
    return snapshot(db, name)


class TestMaterializeApi:
    def test_materialize_registers_and_returns_result(self):
        db = Database()
        db.add_relation("Edge", EDGES)
        result = db.materialize("T", TRIANGLES)
        assert result.scalar == 2.0  # (0,1,2) and (1,2,3)
        assert "T" in db.views
        assert db.views["T"].deps == frozenset({"Edge"})
        assert db.views["T"].delta_capable

    def test_materialize_head_must_match_name(self):
        db = Database()
        db.add_relation("Edge", EDGES)
        with pytest.raises(SchemaError):
            db.materialize("Wrong", TRIANGLES)

    def test_mutating_a_view_is_rejected(self):
        db = Database()
        db.add_relation("Edge", EDGES)
        db.materialize("T", TRIANGLES)
        with pytest.raises(SchemaError):
            db.append("T", [(9, 9)])
        with pytest.raises(SchemaError):
            db.delete("T", [(9, 9)])


class TestDeltaRoute:
    def test_count_star_append_takes_delta_route(self):
        db = Database()
        db.add_relation("Edge", EDGES)
        db.materialize("T", TRIANGLES)
        db.append("Edge", [(2, 0), (3, 0), (0, 3)])
        edges = EDGES + [(2, 0), (3, 0), (0, 3)]
        assert snapshot(db, "T") == rebuild(
            {"Edge": (edges, None)}, [TRIANGLES], "T")
        view = db.views["T"]
        assert view.delta_refreshes == 1 and view.refreshes == 1

    def test_grouped_sum_append_takes_delta_route(self):
        rows = [(0, 1), (0, 2), (1, 2)]
        ann = [2.0, 3.0, 4.0]
        program = "S(a;w:float) :- R(a,b); w=<<SUM(b)>>."
        db = Database()
        db.add_relation("R", rows, annotations=ann)
        db.materialize("S", program)
        db.append("R", [(1, 5), (2, 7)], annotations=[6.0, 1.0])
        assert snapshot(db, "S") == rebuild(
            {"R": (rows + [(1, 5), (2, 7)], ann + [6.0, 1.0])},
            [program], "S")
        assert db.views["S"].delta_refreshes == 1

    def test_min_append_takes_delta_route(self):
        rows = [(0, 4), (0, 9), (1, 6)]
        program = "M(a;w:float) :- R(a,b); w=<<MIN(b)>>."
        db = Database()
        db.add_relation("R", rows)
        db.materialize("M", program)
        db.append("R", [(0, 2), (1, 8), (2, 3)])
        assert snapshot(db, "M") == rebuild(
            {"R": (rows + [(0, 2), (1, 8), (2, 3)], None)},
            [program], "M")
        assert db.views["M"].delta_refreshes == 1

    def test_set_semantics_append_takes_delta_route(self):
        program = "P(a,c) :- R(a,b),R(b,c)."
        db = Database()
        db.add_relation("R", EDGES)
        db.materialize("P", program)
        db.append("R", [(3, 4), (4, 0)])
        assert snapshot(db, "P") == rebuild(
            {"R": (EDGES + [(3, 4), (4, 0)], None)}, [program], "P")
        assert db.views["P"].delta_refreshes == 1

    def test_spurious_staleness_short_circuits(self):
        # Appending a duplicate changes nothing; the view must not be
        # marked stale at all (no refresh work).
        db = Database()
        db.add_relation("Edge", EDGES)
        db.materialize("T", TRIANGLES)
        assert db.append("Edge", [EDGES[0]]) == 0
        db.query("Probe(x) :- Edge(x,y).")
        assert db.views["T"].refreshes == 0

    def test_compiled_mode_delta_parity(self):
        db = Database(execution_mode="compiled")
        db.add_relation("Edge", EDGES)
        db.materialize("T", TRIANGLES)
        db.append("Edge", [(2, 0)])
        assert snapshot(db, "T") == rebuild(
            {"Edge": (EDGES + [(2, 0)], None)}, [TRIANGLES], "T",
            execution_mode="compiled")
        assert db.views["T"].delta_refreshes == 1


class TestFullRouteFallbacks:
    def test_delete_falls_back_to_full_refresh(self):
        db = Database()
        db.add_relation("Edge", EDGES)
        db.materialize("T", TRIANGLES)
        db.delete("Edge", [(0, 2)])
        remaining = [e for e in EDGES if e != (0, 2)]
        assert snapshot(db, "T") == rebuild(
            {"Edge": (remaining, None)}, [TRIANGLES], "T")
        view = db.views["T"]
        assert view.refreshes == 1 and view.delta_refreshes == 0

    def test_annotation_rewrite_falls_back(self):
        rows = [(0, 1), (1, 2)]
        program = "S(;w:float) :- R(a,b); w=<<SUM(b)>>."
        db = Database()
        db.add_relation("R", rows, annotations=[1.0, 1.0])
        db.materialize("S", program)
        db.append("R", [(0, 1)], annotations=[5.0])  # rewrite
        assert snapshot(db, "S") == rebuild(
            {"R": (rows, [5.0, 1.0])}, [program], "S")
        view = db.views["S"]
        assert view.refreshes == 1 and view.delta_refreshes == 0

    def test_count_distinct_is_not_delta_capable(self):
        program = "C(a;w:long) :- R(a,b); w=<<COUNT(b)>>."
        rows = [(0, 1), (0, 2), (1, 1)]
        db = Database()
        db.add_relation("R", rows)
        db.materialize("C", program)
        assert not db.views["C"].delta_capable
        db.append("R", [(0, 2), (0, 3)])
        assert snapshot(db, "C") == rebuild(
            {"R": (rows + [(0, 3)], None)}, [program], "C")
        assert db.views["C"].delta_refreshes == 0

    def test_incremental_views_off_always_full_route(self):
        db = Database(incremental_views=False)
        db.add_relation("Edge", EDGES)
        db.materialize("T", TRIANGLES)
        db.append("Edge", [(2, 0)])
        assert snapshot(db, "T") == rebuild(
            {"Edge": (EDGES + [(2, 0)], None)}, [TRIANGLES], "T")
        view = db.views["T"]
        assert view.refreshes == 1 and view.delta_refreshes == 0


class TestViewChains:
    def test_view_over_view_refreshes_to_fixpoint(self):
        db = Database()
        db.add_relation("R", EDGES)
        db.materialize("P", "P(a,c) :- R(a,b),R(b,c).")
        db.materialize("Q", "Q(a) :- P(a,c).")
        db.append("R", [(3, 4), (4, 1)])
        edges = EDGES + [(3, 4), (4, 1)]
        expected = rebuild({"R": (edges, None)},
                           ["P(a,c) :- R(a,b),R(b,c).",
                            "Q(a) :- P(a,c)."], "Q")
        assert snapshot(db, "Q") == expected
        assert db.views["P"].refreshes >= 1
        assert db.views["Q"].refreshes >= 1

    def test_relation_access_triggers_lazy_refresh(self):
        db = Database()
        db.add_relation("Edge", EDGES)
        db.materialize("T", TRIANGLES)
        db.append("Edge", [(2, 0)])
        assert db.views["T"].stale
        db.relation("T")       # no query needed
        assert not db.views["T"].stale

    def test_repeated_mutations_accumulate_correctly(self):
        db = Database()
        db.add_relation("R", [(0, 1)])
        db.materialize("S", "S(;w:long) :- R(a,b); w=<<COUNT(*)>>.")
        live = {(0, 1)}
        for step in range(12):
            row = (step % 5, (step * 3) % 5)
            if step % 3 == 2:
                db.delete("R", [row])
                live.discard(row)
            else:
                db.append("R", [row])
                live.add(row)
            assert snapshot(db, "S") == rebuild(
                {"R": (sorted(live), None)},
                ["S(;w:long) :- R(a,b); w=<<COUNT(*)>>."], "S")
