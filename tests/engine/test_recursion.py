"""Unit tests for naive and seminaive recursion (paper §3.3.2)."""

import numpy as np
import pytest

from repro import Database
from repro.engine import EngineConfig, RuleExecutor, execute_recursive
from repro.errors import PlanError
from repro.query import parse_rule
from repro.storage import Relation


def executor_with(catalog):
    return RuleExecutor(catalog, EngineConfig())


class TestNaiveUnion:
    def test_transitive_closure_chain(self):
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1), (1, 2), (2, 3)], undirected=False)
        result = db.query("""
            Path(x,y) :- Edge(x,y).
            Path(x,y)* :- Edge(x,z),Path(z,y).
        """)
        assert set(result.tuples()) == {(0, 1), (1, 2), (2, 3), (0, 2),
                                        (1, 3), (0, 3)}

    def test_cycle_terminates(self):
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1), (1, 2), (2, 0)], undirected=False)
        result = db.query("""
            Path(x,y) :- Edge(x,y).
            Path(x,y)* :- Edge(x,z),Path(z,y).
        """)
        assert len(result.tuples()) == 9  # full reachability on a 3-cycle

    def test_missing_base_case(self):
        catalog = {"Edge": Relation("Edge",
                                    np.asarray([[0, 1]], dtype=np.uint32))}
        rule = parse_rule("Path(x,y)* :- Edge(x,z),Path(z,y).")
        with pytest.raises(PlanError):
            execute_recursive(rule, executor_with(catalog))


class TestNaiveReplace:
    def test_fixed_iterations_replace_semantics(self):
        """A bounded recursion recomputes the head each round; here each
        round doubles the annotation: after 3 rounds 1 -> 8."""
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 0)], undirected=False)
        db.query("V(x;a:float) :- Edge(x,x); a=1.")
        result = db.query(
            "V(x;a:float)*[i=3] :- Edge(x,z),V(z); a=2*<<SUM(z)>>.")
        assert result.to_dict() == {0: 8.0}

    def test_pagerank_shape(self, small_db):
        from repro.graphs import pagerank
        ranks = pagerank(small_db)
        assert all(r > 0.14 for r in ranks.values())
        # un-normalized paper formulation: values average near 1
        mean = sum(ranks.values()) / len(ranks)
        assert 0.5 < mean < 1.5


class TestSeminaive:
    def test_sssp_distances_match_dijkstra(self, small_edges):
        import numpy as np
        from repro.baselines import dijkstra_reference
        from repro.graphs import (highest_degree_node, run_sssp_on_edges,
                                  undirect)
        und = undirect(np.asarray(small_edges))
        source = highest_degree_node(und)
        got = run_sssp_on_edges(small_edges, source)
        expected = dijkstra_reference(und, source,
                                      n_nodes=int(und.max()) + 1)
        assert got == expected

    def test_seminaive_equals_naive_fixpoint(self):
        """DESIGN.md invariant: seminaive ≡ naive on monotone rules."""
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)]
        db = Database(ordering="identity")
        db.load_graph("Edge", edges, undirected=True)
        seminaive = db.query("""
            S(x;y:int) :- Edge(0,x); y=1.
            S(x;y:int)* :- Edge(w,x),S(w); y=<<MIN(w)>>+1.
        """).to_dict()
        # Naive variant: bounded iterations well past the diameter.
        db2 = Database(ordering="identity")
        db2.load_graph("Edge", edges, undirected=True)
        db2.query("T(x;y:int) :- Edge(0,x); y=1.")
        for _ in range(8):
            db2.query(
                "T2(x;y:int) :- Edge(w,x),T(w); y=<<MIN(w)>>+1.")
            merged = {}
            for key, value in db2.query("T(x;y:int) :- Edge(0,x); y=1.") \
                    .to_dict().items():
                merged[key] = value
            for key, value in db2.query(
                    "T2b(x;y:int) :- Edge(w,x),T(w); "
                    "y=<<MIN(w)>>+1.").to_dict().items():
                merged[key] = min(merged.get(key, float("inf")), value)
            rows = sorted(merged.items())
            relation = Relation(
                "T", np.asarray([[k] for k, _ in rows], dtype=np.uint32),
                np.asarray([v for _, v in rows]))
            relation.dictionaries = db2.relation("T").dictionaries
            db2.catalog["T"] = relation
        naive = {k: v for k, v in zip(
            (r[0] for r in db2.relation("T").decoded_tuples()),
            db2.relation("T").annotations)}
        assert seminaive == naive

    def test_non_monotone_unbounded_recursion_rejected(self):
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1)], undirected=True)
        db.query("A(x;y:float) :- Edge(0,x); y=1.")
        with pytest.raises(PlanError):
            db.query("A(x;y:float)* :- Edge(w,x),A(w); y=<<SUM(w)>>.")

    def test_delta_shrinks_work(self):
        """Seminaive on a long path must converge (each round's delta is
        the new frontier, not the whole relation)."""
        chain = [(i, i + 1) for i in range(60)]
        db = Database(ordering="identity")
        db.load_graph("Edge", chain, undirected=True)
        distances = db.query("""
            S(x;y:int) :- Edge(0,x); y=1.
            S(x;y:int)* :- Edge(w,x),S(w); y=<<MIN(w)>>+1.
        """).to_dict()
        assert distances[60] == 60
        assert distances[1] == 1
        assert distances[0] == 2  # back through node 1, paper semantics


class TestRecursionAcrossModes:
    """Recursion parity under the compiled pipeline and the parallel
    executors — combinations the per-mode suites above never cross.
    Every variant must reproduce the serial interpreter's fixpoint."""

    MODES = {
        "compiled": dict(execution_mode="compiled"),
        "steal": dict(parallel_workers=4, parallel_threshold=0,
                      parallel_strategy="steal"),
        "static": dict(parallel_workers=4, parallel_threshold=0,
                       parallel_strategy="static"),
        "compiled-steal": dict(execution_mode="compiled",
                               parallel_workers=4, parallel_threshold=0,
                               parallel_strategy="steal"),
    }

    EDGES = [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (4, 0), (2, 5)]

    CLOSURE = """
        Path(x,y) :- Edge(x,y).
        Path(x,y)* :- Edge(x,z),Path(z,y).
    """

    SSSP = """
        S(x;y:int) :- Edge(0,x); y=1.
        S(x;y:int)* :- Edge(w,x),S(w); y=<<MIN(w)>>+1.
    """

    REPLACE_BASE = "V(x;a:float) :- Edge(x,x); a=1."
    REPLACE = "V(x;a:float)*[i=3] :- Edge(x,z),V(z); a=2*<<SUM(z)>>."

    def _db(self, **overrides):
        db = Database(ordering="identity", **overrides)
        db.load_graph("Edge", self.EDGES, undirected=True)
        return db

    @pytest.fixture(params=sorted(MODES), name="mode")
    def _mode(self, request):
        return request.param

    def test_union_fixpoint_parity(self, mode):
        expected = set(self._db().query(self.CLOSURE).tuples())
        got = set(self._db(**self.MODES[mode]).query(self.CLOSURE)
                  .tuples())
        assert got == expected

    def test_monotone_seminaive_parity(self, mode):
        expected = self._db().query(self.SSSP).to_dict()
        got = self._db(**self.MODES[mode]).query(self.SSSP).to_dict()
        assert got == expected

    def test_bounded_replace_parity(self, mode):
        loop_edges = [(0, 0), (0, 1), (1, 1)]
        baseline = Database(ordering="identity")
        baseline.load_graph("Edge", loop_edges, undirected=False)
        baseline.query(self.REPLACE_BASE)
        expected = baseline.query(self.REPLACE).to_dict()
        db = Database(ordering="identity", **self.MODES[mode])
        db.load_graph("Edge", loop_edges, undirected=False)
        db.query(self.REPLACE_BASE)
        assert db.query(self.REPLACE).to_dict() == expected
