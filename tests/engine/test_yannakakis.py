"""Tests of the across-bag machinery: bottom-up semijoins + top-down.

These force multi-bag plans (acyclic queries where the head spans bags)
and check the Yannakakis passes against reference joins, including the
annotated top-down multiplication and the B.2 elision switch.
"""

import numpy as np
import pytest

from repro import Database


def reference_two_hop(edges):
    adjacency = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
    out = set()
    for u in adjacency:
        for mid in adjacency[u]:
            for w in adjacency.get(mid, ()):
                out.add((u, w))
    return out


class TestTopDown:
    def test_two_hop_spans_bags(self):
        edges = [(0, 1), (1, 2), (2, 3), (1, 4), (4, 0)]
        db = Database(ordering="identity")
        db.load_graph("Edge", edges, undirected=False)
        result = set(db.query("Q(x,y) :- Edge(x,z),Edge(z,y).").tuples())
        assert result == reference_two_hop(edges)

    def test_three_hop_chain(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]
        db = Database(ordering="identity")
        db.load_graph("Edge", edges, undirected=False)
        result = set(db.query(
            "Q(a,d) :- Edge(a,b),Edge(b,c),Edge(c,d).").tuples())
        adjacency = {}
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
        expected = {(a, d)
                    for a in adjacency for b in adjacency[a]
                    for c in adjacency.get(b, ())
                    for d in adjacency.get(c, ())}
        assert result == expected

    def test_skip_top_down_toggle_equivalent(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
        for skip in (True, False):
            db = Database(ordering="identity", skip_top_down=skip)
            db.load_graph("Edge", edges, undirected=False)
            got = set(db.query(
                "Q(x,y) :- Edge(x,z),Edge(z,y).").tuples())
            assert got == reference_two_hop(edges), skip

    def test_annotations_multiply_across_bags(self):
        """Materialized join of two annotated relations through a
        multi-bag plan must carry the product annotation."""
        db = Database()
        db.add_encoded("A", [[0, 1], [0, 2]], annotations=[2.0, 3.0])
        db.add_encoded("B", [[1, 5], [2, 5]], annotations=[10.0, 100.0])
        result = db.query("Q(x,z;v:float) :- A(x,y),B(y,z); "
                          "v=<<SUM(y)>>.")
        got = result.to_dict()
        # (0,5): 2*10 + 3*100
        assert got[(0, 5)] == pytest.approx(320.0)

    def test_dangling_tuples_filtered(self):
        """Semijoin reduction: tuples with no join partner never appear
        and never inflate the top-down join."""
        db = Database(ordering="identity")
        db.add_encoded("A", [[0, 1], [9, 9]])
        db.add_encoded("B", [[1, 2]])
        result = db.query("Q(x,y,z) :- A(x,y),B(y,z).")
        assert set(result.tuples()) == {(0, 1, 2)}


class TestChildPassUp:
    def test_aggregated_child_values_flow_up(self):
        """Barbell count: child triangle counts multiply at the root —
        checked against an explicit per-node triangle count."""
        edges = [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (4, 5), (3, 5),
                 (2, 3)]
        db = Database()
        db.load_graph("Edge", edges)
        got = db.query(
            "BB(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,p),"
            "Edge(p,q),Edge(q,r),Edge(p,r); w=<<COUNT(*)>>.").scalar
        adjacency = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        ordered_triangles_at = {}
        for x in adjacency:
            count = 0
            for y in adjacency[x]:
                for z in adjacency[x]:
                    if y != z and z in adjacency[y]:
                        count += 1
            ordered_triangles_at[x] = count
        expected = sum(
            ordered_triangles_at[x] * ordered_triangles_at[p]
            for x in adjacency for p in adjacency[x])
        assert got == expected
