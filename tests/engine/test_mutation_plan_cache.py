"""Versioned plan guards and surgical cache invalidation under mutation.

The plan cache, bag memo, and trie cache all pin the catalog relations
they read as ``(name, relation, version)`` guards.  These tests are the
regression suite for the mutation refactor's invalidation contract:

* a compiled plan must be *rejected* (not silently reused) after an
  in-place ``Database.append``/``delete`` bumps a guard version;
* invalidation is *surgical* — mutating ``R`` leaves every cached plan
  and trie that never read ``R`` warm;
* the version-keyed trie cache patches stale tries by journal replay
  instead of rebuilding when the delta is small.
"""

from repro import Database

EDGES = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]
OTHER = [(0, 0), (1, 1), (5, 2)]

QR = "QR(;w:long) :- R(x,y),R(y,z); w=<<COUNT(*)>>."
QS = "QS(;w:long) :- S(x,y); w=<<COUNT(*)>>."


def compiled_db():
    db = Database(execution_mode="compiled")
    db.add_relation("R", EDGES)
    db.add_relation("S", OTHER)
    return db


def count_paths(edges):
    by_src = {}
    for x, y in edges:
        by_src.setdefault(x, []).append(y)
    return float(sum(len(by_src.get(y, ())) for _, y in edges))


class TestVersionedGuards:
    def test_stale_compiled_plan_rejected_after_mutation(self):
        """Satellite regression: in-place mutation must invalidate the
        compiled rule through its version guard — the relation object
        (identity) is unchanged, so the pre-refactor identity-only
        guard would have served the stale baked tries."""
        db = compiled_db()
        db.query(QR)
        (compiled,) = db._plan_cache._rules.values()
        relation = db.catalog["R"]
        assert compiled.valid(db.catalog)
        db.append("R", [(3, 0)])
        assert db.catalog["R"] is relation      # same object...
        assert not compiled.valid(db.catalog)   # ...stale plan anyway
        assert db.query(QR).scalar == count_paths(EDGES + [(3, 0)])

    def test_append_query_warm_delete_query_counters(self):
        """Satellite: append -> query (warm) -> delete -> query, with
        the expected plan-cache tier hits/misses in ``ExecStats``."""
        db = compiled_db()
        db.query(QR)
        assert db.last_stats.plan_cache_misses == 1

        db.query(QR)  # warm: full tier hit, no parse, no codegen
        assert db.last_stats.plan_cache_hits == 1
        assert db.last_stats.plan_cache_misses == 0
        assert db.last_stats.parses == 0
        assert db.last_stats.codegen_runs == 0

        db.append("R", [(3, 0), (3, 4)])
        result = db.query(QR)
        assert result.scalar == count_paths(EDGES + [(3, 0), (3, 4)])
        assert db.last_stats.plan_cache_misses == 1  # version guard

        db.query(QR)  # warm again at the new version
        assert db.last_stats.plan_cache_hits == 1

        db.delete("R", [(0, 2), (3, 4)])
        remaining = [e for e in EDGES + [(3, 0)] if e != (0, 2)]
        result = db.query(QR)
        assert result.scalar == count_paths(remaining)
        assert db.last_stats.plan_cache_misses == 1

    def test_invalidation_is_surgical_across_relations(self):
        """Mutating R must leave S-only plans (and tries) warm — the
        acceptance criterion's plan-cache-counter proof."""
        db = compiled_db()
        db.query(QR)
        db.query(QS)
        db.query(QS)
        assert db.last_stats.plan_cache_hits == 1

        db.append("R", [(4, 4)])
        db.query(QS)  # S never read R: still a plan-cache hit
        assert db.last_stats.plan_cache_hits == 1
        assert db.last_stats.plan_cache_misses == 0
        db.query(QR)  # R's own plan was invalidated
        assert db.last_stats.plan_cache_misses == 1


class TestVersionKeyedTrieCache:
    def test_small_append_patches_stale_trie(self):
        db = Database()
        db.add_relation("R", [(c, c + 1) for c in range(40)])
        db.query(QR)
        assert db._trie_cache.patches == 0
        db.append("R", [(99, 0)])
        db.query(QR)
        assert db._trie_cache.patches >= 1
        assert db.query(QR).scalar == count_paths(
            [(c, c + 1) for c in range(40)] + [(99, 0)])

    def test_large_append_rebuilds_instead_of_patching(self):
        db = Database()
        db.add_relation("R", [(0, 1), (1, 2)])
        db.query(QR)
        # 30 new rows on a 2-row base: far past PATCH_RATIO, and the
        # merge threshold trims the journal anyway -> full rebuild.
        db.append("R", [(c + 10, c) for c in range(30)])
        db.query(QR)
        assert db._trie_cache.patches == 0

    def test_stale_version_entry_retired_not_duplicated(self):
        db = Database()
        db.add_relation("R", [(c, c + 1) for c in range(40)])
        db.query(QR)
        entries_before = len(db._trie_cache._tries)
        db.append("R", [(99, 0)])
        db.query(QR)
        assert len(db._trie_cache._tries) == entries_before
        versions = {key[1] for key in db._trie_cache._tries
                    if key[0] == getattr(db.catalog["R"], "_trie_uid",
                                         None)}
        assert versions == {db.catalog["R"].version}
