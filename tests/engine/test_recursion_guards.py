"""Guard-rail tests for the recursion driver."""

import numpy as np
import pytest

from repro import Database
from repro.engine import EngineConfig, RuleExecutor
from repro.engine.recursion import execute_recursive
from repro.errors import ExecutionError
from repro.query import parse_rule
from repro.storage import Relation


class TestConvergenceGuards:
    def test_union_round_cap_raises(self):
        """A rule that grows forever must hit the round cap, not spin."""
        catalog = {
            "Succ": Relation("Succ", np.stack(
                [np.arange(500, dtype=np.uint32),
                 np.arange(1, 501, dtype=np.uint32)], axis=1)),
            "Grow": Relation("Grow", np.asarray([[0, 0]],
                                                dtype=np.uint32)),
        }
        executor = RuleExecutor(catalog, EngineConfig())
        rule = parse_rule("Grow(x,y)* :- Grow(x,z),Succ(z,y).")
        with pytest.raises(ExecutionError):
            execute_recursive(rule, executor, max_rounds=5)

    def test_seminaive_converges_on_cycles(self):
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1), (1, 2), (2, 0)], undirected=True)
        distances = db.query("""
            S(x;d:int) :- Edge(0,x); d=1.
            S(x;d:int)* :- Edge(w,x),S(w); d=<<MIN(w)>>+1.
        """).to_dict()
        assert distances == {1: 1, 2: 1, 0: 2}

    def test_zero_iteration_replace(self):
        """``*[i=0]`` leaves the base case untouched."""
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1)], undirected=True)
        db.query("V(x;a:float) :- Edge(0,x); a=5.")
        result = db.query(
            "V(x;a:float)*[i=0] :- Edge(w,x),V(w); a=2*<<SUM(w)>>.")
        assert result.to_dict() == {1: 5.0}

    def test_replace_mode_overwrites_not_unions(self):
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1), (1, 2)], undirected=True)
        db.query("V(x;a:float) :- Edge(0,x); a=1.")
        # one replace round: V becomes {x adjacent to old V keys}
        result = db.query(
            "V(x;a:float)*[i=1] :- Edge(w,x),V(w); a=<<SUM(w)>>.")
        # old V = {1}; neighbors of 1 = {0, 2}
        assert set(result.to_dict()) == {0, 2}

    def test_catalog_restored_after_seminaive(self):
        """The delta substitution must not leak into the catalog on
        completion — the final full relation is installed."""
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1), (1, 2)], undirected=True)
        db.query("""
            S(x;d:int) :- Edge(0,x); d=1.
            S(x;d:int)* :- Edge(w,x),S(w); d=<<MIN(w)>>+1.
        """)
        stored = db.relation("S")
        assert stored.cardinality == 3  # all reachable, not a delta
