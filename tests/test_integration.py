"""Cross-cutting integration tests: plans, engines, and configurations
must always agree on answers (only performance may differ)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.baselines import PairwiseEngine
from repro.graphs import undirect
from tests.conftest import brute_force_triangles, random_undirected_edges


def fresh_db(edges, prune=False, **overrides):
    db = Database(**overrides)
    db.load_graph("Edge", edges, prune=prune)
    return db


class TestPlanEquivalence:
    QUERIES = [
        "Q(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).",
        "Q(x,y,z,u) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(z,u).",
        "Q(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u); "
        "w=<<COUNT(*)>>.",
        "Q(x;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.",
        "Q(y) :- Edge(0,x),Edge(x,y).",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_ghd_equals_single_node(self, query):
        edges = random_undirected_edges(25, 90, seed=33)
        with_ghd = fresh_db(edges)
        without = fresh_db(edges, use_ghd=False)
        result_a = with_ghd.query(query)
        result_b = without.query(query)
        if result_a.relation.arity == 0:
            assert result_a.scalar == result_b.scalar
        elif result_a.annotations is not None:
            assert result_a.to_dict() == result_b.to_dict()
        else:
            assert set(result_a.tuples()) == set(result_b.tuples())

    def test_wcoj_equals_pairwise_on_random_patterns(self):
        """The WCOJ engine and the pairwise hash-join engine implement
        the same semantics; compare on random conjunctive patterns."""
        edges = random_undirected_edges(18, 50, seed=7)
        both = undirect(np.asarray(edges))
        patterns = [
            [("x", "y"), ("y", "z")],
            [("x", "y"), ("y", "z"), ("x", "z")],
            [("x", "y"), ("y", "z"), ("z", "w")],
            [("x", "y"), ("y", "z"), ("x", "z"), ("z", "w"), ("w", "x")],
        ]
        for pattern in patterns:
            pairwise = PairwiseEngine()
            pairwise.add("E", both)
            expected = pairwise.count_conjunctive(
                [("E", vars_) for vars_ in pattern])
            db = fresh_db(edges, ordering="identity")
            variables = sorted({v for vars_ in pattern for v in vars_})
            body = ",".join("Edge(%s,%s)" % vars_ for vars_ in pattern)
            query = "Q(;w:long) :- %s; w=<<COUNT(*)>>." % body
            assert db.query(query).scalar == expected, pattern


class TestOrderingInvariance:
    def test_triangle_count_invariant_across_orderings(self):
        edges = random_undirected_edges(30, 110, seed=13)
        expected = brute_force_triangles(edges)
        from repro.storage import ORDERINGS
        for scheme in ORDERINGS:
            db = Database(ordering=scheme)
            db.load_graph("Edge", edges, prune=True)
            got = db.query("T(;w:long) :- Edge(x,y),Edge(y,z),"
                           "Edge(x,z); w=<<COUNT(*)>>.").scalar
            assert got == expected, scheme


class TestLayoutInvariance:
    @pytest.mark.parametrize("level", ["relation", "set", "block",
                                       "uint_only", "bitset_only"])
    def test_results_independent_of_layout_level(self, level):
        edges = random_undirected_edges(25, 100, seed=3)
        db = fresh_db(edges, prune=True, layout_level=level)
        got = db.query("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                       "w=<<COUNT(*)>>.").scalar
        assert got == brute_force_triangles(edges)


@given(seed=st.integers(0, 40), n_nodes=st.integers(5, 22),
       n_edges=st.integers(4, 60))
@settings(max_examples=25, deadline=None)
def test_property_triangles_equal_brute_force(seed, n_nodes, n_edges):
    edges = random_undirected_edges(n_nodes, n_edges, seed=seed)
    if not edges:
        return
    db = fresh_db(edges, prune=True)
    got = db.query("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                   "w=<<COUNT(*)>>.").scalar
    assert got == brute_force_triangles(edges)


@given(seed=st.integers(0, 20))
@settings(max_examples=12, deadline=None)
def test_property_sssp_equals_dijkstra(seed):
    from repro.baselines import dijkstra_reference
    from repro.graphs import highest_degree_node, run_sssp_on_edges

    edges = random_undirected_edges(20, 40, seed=seed)
    if not edges:
        return
    both = undirect(np.asarray(edges))
    source = highest_degree_node(both)
    got = run_sssp_on_edges(edges, source)
    expected = dijkstra_reference(both, source,
                                  n_nodes=int(both.max()) + 1)
    assert got == expected
