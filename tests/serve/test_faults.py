"""Fault injection: per-query timeouts, SIGTERM mid-request.

The ``debug_sleep`` request field (honored only with ``debug=True``)
injects latency *inside* the telemetry journal window — between
``begin_query`` and ``record_query`` — so these tests exercise exactly
the states a production stall would: a request past its deadline with
its worker still running, and a process signaled while a query is in
flight (the flight recorder's write-ahead journal must name it).
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import Database
from repro.serve import QueryService, ServeClient
from repro.serve.protocol import decode_message, encode_message

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
EDGE_PAIRS = "P(x,y) :- Edge(x,y)."


@pytest.fixture
def service(tmp_path):
    db = Database()
    db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)])
    svc = QueryService(db, debug=True,
                       telemetry_dir=str(tmp_path / "telemetry")).start()
    yield svc
    svc.stop()
    db.close()


def test_slow_query_times_out_with_structured_error(service):
    with ServeClient(port=service.port) as client:
        reply = client.query(EDGE_PAIRS, timeout=0.15, debug_sleep=1.0)
        assert reply["status"] == "error"
        assert reply["code"] == "timeout"
        assert "timeout" in reply["error"]
        assert service.timeouts == 1


def test_timeout_frees_slot_and_next_query_is_unaffected(service):
    # The timed-out worker is still running when the next query is
    # admitted; the slot is free, the next query queues FIFO behind the
    # zombie and completes correctly.
    with ServeClient(port=service.port) as client:
        assert client.query(EDGE_PAIRS, timeout=0.1,
                            debug_sleep=0.6)["code"] == "timeout"
        follow_up = client.query(TRIANGLES)
        assert follow_up["status"] == "ok"
        assert follow_up["result"]["value"] == 6.0
    # Once the zombie drains, nothing is left pending.
    deadline = time.time() + 5
    while service._outstanding and time.time() < deadline:
        time.sleep(0.02)
    assert service._outstanding == 0
    assert service._pending == {}


def test_timeout_cancels_queued_op_cleanly(service):
    # An op that times out while still *queued* (the worker is busy) is
    # cancelled before execution: its effects never apply, the cache
    # stays valid, and its pending marks are released.
    with ServeClient(port=service.port) as client:
        client.query(TRIANGLES)
        assert client.query(TRIANGLES)["cached"] is True
        # Occupy the worker so the mutation times out in the queue.
        slow = threading.Thread(
            target=lambda: ServeClient(port=service.port).query(
                EDGE_PAIRS, debug_sleep=0.5))
        slow.start()
        time.sleep(0.15)
        reply = client.append("Edge", [(1, 3), (3, 1)],
                              timeout=0.05)
        assert reply["code"] == "timeout"
        slow.join(timeout=30)
        deadline = time.time() + 5
        while service._outstanding and time.time() < deadline:
            time.sleep(0.02)
        assert service._pending == {}
        post = client.query(TRIANGLES)
        assert post["cached"] is True  # the mutation never ran
        assert post["result"]["value"] == 6.0


def test_timed_out_running_query_still_completes(service):
    # A timeout on a *running* query is a response deadline, not an
    # abort: the worker finishes in the background and its effects
    # (including the result-cache store) still apply via _finish.
    with ServeClient(port=service.port) as client:
        reply = client.query(EDGE_PAIRS, timeout=0.1, debug_sleep=0.4)
        assert reply["code"] == "timeout"
        deadline = time.time() + 5
        while service._outstanding and time.time() < deadline:
            time.sleep(0.02)
        replay = client.query(EDGE_PAIRS)
        assert replay["status"] == "ok"
        assert replay["cached"] is True  # the zombie stored its result


def test_per_request_timeout_overrides_default():
    db = Database()
    db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)])
    service = QueryService(db, debug=True, default_timeout=0.1).start()
    try:
        with ServeClient(port=service.port) as client:
            # Default would kill this; the per-request timeout saves it.
            reply = client.query(EDGE_PAIRS, timeout=5.0,
                                 debug_sleep=0.3)
            assert reply["status"] == "ok"
            # And the default applies when the request carries none.
            reply = client.query(EDGE_PAIRS, debug_sleep=0.5)
            assert reply["code"] == "timeout"
    finally:
        service.stop()
        db.close()


def _repo_paths():
    root = Path(__file__).resolve().parents[2]
    return root, root / "src"


def _spawn_daemon(tmp_path, telemetry_dir, extra_args=()):
    root, src = _repo_paths()
    edges = tmp_path / "edges.txt"
    edges.write_text("0 1\n1 2\n0 2\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--edges", str(edges), "--telemetry", str(telemetry_dir),
         "--debug", "--drain-timeout", "0.3", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        cwd=str(root), env=env, text=True)
    line = process.stdout.readline()
    assert "listening on" in line, (line, process.stderr.read())
    port = int(line.rsplit(":", 1)[1])
    return process, port


def _raw_request(port, message, read_reply=True, timeout=10.0):
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    sock.sendall(encode_message(message))
    if not read_reply:
        return sock
    with sock, sock.makefile("rb") as reader:
        return decode_message(reader.readline())


def test_sigterm_mid_request_leaves_post_mortem(tmp_path):
    from repro.obs.flight import post_mortem, validate_post_mortem
    telemetry_dir = tmp_path / "telemetry"
    process, port = _spawn_daemon(tmp_path, telemetry_dir)
    try:
        # Sanity: the daemon answers.
        assert _raw_request(port, {"op": "ping"})["pong"] is True
        # Park a slow query inside the journal window, then SIGTERM.
        sock = _raw_request(port, {"op": "query", "text": EDGE_PAIRS,
                                   "debug_sleep": 3.0},
                            read_reply=False)
        time.sleep(0.4)  # let it journal + enter execution
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
        sock.close()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    payload = post_mortem(str(telemetry_dir))
    assert payload is not None
    assert not validate_post_mortem(payload)
    assert payload["reason"] == "sigterm"
    inflight = payload["inflight"]
    assert inflight is not None, "slow query missing from journal"
    assert inflight["status"] == "inflight"
    assert inflight["text"] == EDGE_PAIRS
    assert inflight["result_cache"] == "miss"


def test_sigterm_idle_drains_cleanly(tmp_path):
    from repro.obs.flight import post_mortem
    telemetry_dir = tmp_path / "telemetry"
    process, port = _spawn_daemon(tmp_path, telemetry_dir)
    try:
        reply = _raw_request(port, {"op": "query", "text": TRIANGLES})
        assert reply["status"] == "ok"
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    assert process.returncode == 0
    payload = post_mortem(str(telemetry_dir))
    assert payload["reason"] == "sigterm"
    assert payload["inflight"] is None  # nothing was executing
    assert any(record.get("text") == TRIANGLES
               for record in payload["records"])
    # The query log survived the drain with the serve fields stamped.
    from repro.obs.telemetry import read_query_log
    records = read_query_log(str(telemetry_dir / "queries.jsonl"))
    assert any(record.get("result_cache") == "miss"
               for record in records)
