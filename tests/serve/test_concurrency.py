"""Concurrency harness: N clients, mixed reads/writes, serial oracle.

Three properties of the daemon under real thread-level concurrency:

1. **Bit-identical results.**  Phase-structured load — many clients
   hammering overlapping cached/uncached queries, mutations applied at
   phase barriers — must produce, for every single request, exactly
   the payload a serial replay of the same ops produces on a direct
   :class:`~repro.api.Database`.  Cache hits and misses must agree.
2. **No stale hits.**  Queries racing an in-flight mutation may see
   the pre- or post-mutation answer (admission order decides), but a
   query issued *after* the mutation's acknowledgement must see the
   post-mutation answer — a stale cache entry served after its
   invalidation would break exactly this.
3. **Clean drain.**  Shutdown during in-flight requests answers them
   before the socket closes; later requests are rejected.
"""

import threading

import pytest

from repro import Database
from repro.serve import QueryService, ServeClient
from repro.serve.protocol import payload_from_relation

CLIENTS = 6
REPEATS = 4

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
TAG_COUNT = "C(;w:long) :- Tag(x); w=<<COUNT(*)>>."
EDGE_PAIRS = "P(x,y) :- Edge(x,y)."

#: (query text, repeats per client per phase) — overlapping cached and
#: uncached programs; EDGE_PAIRS keeps a multi-tuple payload in play.
WORKLOAD = [(TRIANGLES, REPEATS), (TAG_COUNT, REPEATS),
            (EDGE_PAIRS, 2)]

#: Mutations applied at phase barriers: (op, relation, tuples).
PHASES = [
    ("append", "Edge", [(1, 3), (3, 1)]),     # closes a second triangle
    ("append", "Tag", [(7,), (8,)]),          # unrelated to triangles
    ("delete", "Edge", [(2, 3), (3, 2)]),
    ("append", "Edge", [(0, 3), (3, 0)]),
]

BASE_EDGES = [(0, 1), (1, 2), (0, 2), (2, 3)]
BASE_TAGS = [(1,), (2,)]


def _fresh_db():
    db = Database()
    db.load_graph("Edge", BASE_EDGES)
    db.add_relation("Tag", BASE_TAGS)
    return db


def _oracle_payloads():
    """Serial replay: expected payload of every query in every phase
    (phase 0 = before any mutation)."""
    db = _fresh_db()
    expected = []
    for phase in range(len(PHASES) + 1):
        if phase > 0:
            op, name, tuples = PHASES[phase - 1]
            getattr(db, op)(name, tuples)
        row = {}
        for text, _ in WORKLOAD:
            relation = db.query(text).relation
            row[text] = payload_from_relation(relation, db._dictionary)
        expected.append(row)
    db.close()
    return expected


@pytest.fixture
def service():
    db = _fresh_db()
    svc = QueryService(db, max_inflight=64, debug=True).start()
    yield svc
    svc.stop()
    db.close()


def test_phased_mixed_load_matches_serial_replay(service):
    expected = _oracle_payloads()
    errors = []
    barrier = threading.Barrier(CLIENTS + 1)

    def client_worker(index):
        try:
            with ServeClient(port=service.port) as client:
                for phase in range(len(PHASES) + 1):
                    barrier.wait()  # mutation applied, phase open
                    for text, repeats in WORKLOAD:
                        for _ in range(repeats):
                            reply = client.call_with_retry("query",
                                                           text=text)
                            if reply["status"] != "ok":
                                errors.append((index, phase, reply))
                                continue
                            if reply["result"] != expected[phase][text]:
                                errors.append(
                                    (index, phase, text,
                                     reply["result"],
                                     expected[phase][text]))
                    barrier.wait()  # phase closed, no queries in flight
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append((index, "exception", repr(error)))
            # Unblock the coordinator rather than deadlocking the test.
            barrier.abort()

    threads = [threading.Thread(target=client_worker, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    with ServeClient(port=service.port) as control:
        for phase in range(len(PHASES) + 1):
            barrier.wait()   # open the phase for the clients
            barrier.wait()   # wait for every client to finish it
            if phase < len(PHASES):
                op, name, tuples = PHASES[phase]
                reply = getattr(control, op)(name, tuples)
                assert reply["status"] == "ok", reply
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors[:5]


def test_cache_tiers_match_serial_replay(service):
    # Same query from many clients: exactly one miss computes, the
    # rest hit; after a related mutation, exactly one more miss.
    results = [None] * CLIENTS

    def worker(index):
        with ServeClient(port=service.port) as client:
            results[index] = [client.call_with_retry("query",
                                                     text=TRIANGLES)
                              for _ in range(REPEATS)]

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    flat = [reply for batch in results for reply in batch]
    assert all(reply["status"] == "ok" for reply in flat)
    assert len(set(repr(reply["result"]) for reply in flat)) == 1
    snapshot = service.cache.snapshot()
    # Concurrent first arrivals may each miss (the entry is not stored
    # yet) and execute FIFO; once the entry lands, every later request
    # hits — a pending same-program execution never blocks the hit.
    assert snapshot["hits"] > 0
    assert snapshot["hits"] + snapshot["misses"] \
        + snapshot["bypasses"] == len(flat)
    with ServeClient(port=service.port) as client:
        client.append("Edge", [(1, 3), (3, 1)])
        post = client.query(TRIANGLES)
        assert post["cached"] is False
        assert post["result"]["value"] == 12.0
        assert client.query(TRIANGLES)["cached"] is True


def test_no_stale_hits_when_racing_a_mutation(service):
    # Queries racing one mutation may land before or after it, but
    # never see a third value — and queries issued after the mutation
    # ack must see the post-mutation answer.
    pre = {"kind": "scalar", "value": 6.0}
    post = {"kind": "scalar", "value": 12.0}
    racing = []
    stop = threading.Event()

    def reader():
        with ServeClient(port=service.port) as client:
            while not stop.is_set():
                racing.append(client.call_with_retry("query",
                                                     text=TRIANGLES))

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    with ServeClient(port=service.port) as control:
        assert control.query(TRIANGLES)["result"] == pre
        control.append("Edge", [(1, 3), (3, 1)])
        after_ack = control.query(TRIANGLES)
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    assert after_ack["result"] == post
    for reply in racing:
        assert reply["status"] == "ok"
        assert reply["result"] in (pre, post), reply


def test_drain_answers_inflight_then_rejects(service):
    # A slow query in flight when shutdown begins still gets its
    # answer; requests arriving during the drain are rejected.
    reply_box = {}

    def slow_reader():
        with ServeClient(port=service.port) as client:
            reply_box["slow"] = client.query(EDGE_PAIRS,
                                             debug_sleep=0.5)

    thread = threading.Thread(target=slow_reader)
    thread.start()
    import time
    time.sleep(0.15)  # let the slow query enter execution
    with ServeClient(port=service.port) as control:
        assert control.shutdown()["draining"] is True
        rejected = control.query(TRIANGLES)
        assert rejected["status"] == "rejected"
        assert rejected["code"] == "shutting_down"
    thread.join(timeout=30)
    assert reply_box["slow"]["status"] == "ok"
    assert reply_box["slow"]["rows"] == 8
    service._thread.join(timeout=30)
    assert not service._thread.is_alive()


def test_backpressure_rejects_with_retry_after():
    db = _fresh_db()
    service = QueryService(db, max_inflight=1, debug=True).start()
    try:
        replies = [None, None]

        def occupant():
            with ServeClient(port=service.port) as client:
                replies[0] = client.query(EDGE_PAIRS, debug_sleep=0.6)

        thread = threading.Thread(target=occupant)
        thread.start()
        import time
        time.sleep(0.15)
        with ServeClient(port=service.port) as client:
            replies[1] = client.query(TRIANGLES)
            assert replies[1]["status"] == "rejected"
            assert replies[1]["code"] == "overloaded"
            assert replies[1]["retry_after"] > 0
            # Honoring the hint eventually succeeds.
            final = client.call_with_retry("query", text=TRIANGLES,
                                           attempts=50)
            assert final["status"] == "ok"
        thread.join(timeout=30)
        assert replies[0]["status"] == "ok"
    finally:
        service.stop()
        db.close()
