"""Query-service basics: protocol, result cache, invalidation, ops.

The concurrency harness lives in ``test_concurrency.py`` and the
timeout/fault-injection cases in ``test_faults.py``; this file covers
the single-client contract — wire framing, every op, and the result
cache's hit/miss/invalidate semantics (the acceptance criterion:
mutations invalidate exactly the entries reading the mutated
relation).
"""

import pytest

from repro import Database
from repro.serve import QueryService, ServeClient, ResultCache, \
    program_identity
from repro.serve.protocol import (decode_message, encode_message,
                                  payload_from_relation,
                                  payload_to_outcome)

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
EDGE_PAIRS = "P(x,y) :- Edge(x,y)."
TAG_ROWS = "G(x) :- Tag(x)."


@pytest.fixture
def service():
    db = Database()
    db.load_graph("Edge", [(0, 1), (1, 2), (0, 2), (2, 3)])
    db.add_relation("Tag", [(1,), (2,)])
    svc = QueryService(db, debug=True).start()
    yield svc
    svc.stop()
    db.close()


@pytest.fixture
def client(service):
    with ServeClient(port=service.port) as c:
        yield c


# -- protocol ---------------------------------------------------------------


def test_encode_decode_round_trip():
    message = {"op": "query", "text": "T(x) :- E(x).", "id": 7}
    assert decode_message(encode_message(message)) == message


def test_decode_rejects_non_objects():
    with pytest.raises(ValueError):
        decode_message(b"[1,2,3]\n")
    with pytest.raises(ValueError):
        decode_message(b"not json\n")


def test_payload_round_trip(service):
    relation = service.db.relation("Edge")
    payload = payload_from_relation(relation, service.db._dictionary)
    kind, value = payload_to_outcome(payload)
    assert kind == "set"
    assert (0, 1) in value and (1, 0) in value


def test_bad_request_line_is_answered_not_fatal(client):
    client._sock.sendall(b"this is not json\n")
    reply = decode_message(client._reader.readline())
    assert reply["status"] == "error"
    assert reply["code"] == "bad_request"
    # The connection is still usable.
    assert client.ping()["status"] == "ok"


def test_unknown_op(client):
    reply = client.call("frobnicate")
    assert reply["status"] == "error"
    assert reply["code"] == "unknown_op"


def test_request_id_is_echoed(client):
    reply = client.call("ping", id=42)
    assert reply["id"] == 42


# -- basic ops --------------------------------------------------------------


def test_query_scalar(client):
    reply = client.query(TRIANGLES)
    assert reply["status"] == "ok"
    assert reply["result"] == {"kind": "scalar", "value": 6.0}
    assert reply["cached"] is False


def test_query_set(client):
    reply = client.query(EDGE_PAIRS)
    assert reply["status"] == "ok"
    kind, rows = payload_to_outcome(reply["result"])
    assert kind == "set"
    assert rows == frozenset([(0, 1), (1, 0), (1, 2), (2, 1),
                              (0, 2), (2, 0), (2, 3), (3, 2)])


def test_query_error_is_structured(client):
    reply = client.query("T(x) :- Missing(x).")
    assert reply["status"] == "error"
    assert reply["code"] == "query_error"
    assert reply["error_class"] == "UnknownRelationError"
    assert "Missing" in reply["error"]


def test_status_op(client):
    status = client.status()
    assert status["protocol_version"] == 1
    assert "Edge" in status["relations"]
    assert status["draining"] is False
    assert status["result_cache"]["capacity"] == 256


def test_mutations_and_relation_fetch(client):
    assert client.append("Tag", [(9,)])["changed"] == 1
    assert client.append("Tag", [(9,)])["changed"] == 0  # idempotent
    assert client.delete("Tag", [(1,)])["changed"] == 1
    kind, rows = payload_to_outcome(client.relation("Tag")["result"])
    assert rows == frozenset([(2,), (9,)])


def test_add_relation_and_query_it(client):
    client.add_relation("Score", [(1, 10), (2, 20)])
    reply = client.query("S(x,y) :- Score(x,y).")
    kind, rows = payload_to_outcome(reply["result"])
    assert rows == frozenset([(1, 10), (2, 20)])


def test_materialize_and_view_refresh(client):
    assert client.materialize("Deg", "Deg(x;d:long) :- Edge(x,y); "
                              "d=<<COUNT(y)>>.")["status"] == "ok"
    before = payload_to_outcome(client.relation("Deg")["result"])[1]
    assert before[(3,)] == 1.0
    client.append("Edge", [(3, 0), (0, 3)])
    after = payload_to_outcome(client.relation("Deg")["result"])[1]
    assert after[(3,)] == 2.0


def test_mutating_a_view_is_rejected(client):
    client.materialize("Deg", "Deg(x;d:long) :- Edge(x,y); "
                       "d=<<COUNT(y)>>.")
    reply = client.append("Deg", [(5, 5)])
    assert reply["status"] == "error"
    assert reply["error_class"] == "SchemaError"


# -- result cache -----------------------------------------------------------


def test_repeated_query_hits_cache(client):
    first = client.query(TRIANGLES)
    second = client.query(TRIANGLES)
    assert first["cached"] is False
    assert second["cached"] is True
    assert second["result"] == first["result"]


def test_unrelated_mutation_keeps_hits(client, service):
    client.query(TRIANGLES)
    assert client.query(TRIANGLES)["cached"] is True
    client.append("Tag", [(7,)])  # Tag is not in the triangle read set
    assert client.query(TRIANGLES)["cached"] is True
    assert service.cache.snapshot()["invalidations"] == 0


def test_related_mutation_invalidates(client):
    client.query(TRIANGLES)
    assert client.query(TRIANGLES)["cached"] is True
    client.append("Edge", [(1, 3), (3, 1)])  # closes triangle 1-2-3
    reply = client.query(TRIANGLES)
    assert reply["cached"] is False
    assert reply["result"]["value"] == 12.0  # 2 triangles, 6 orderings
    assert client.query(TRIANGLES)["cached"] is True


def test_noop_mutation_keeps_hits(client):
    client.query(TRIANGLES)
    assert client.append("Edge", [(0, 1)])["changed"] == 0
    assert client.query(TRIANGLES)["cached"] is True


def test_delete_invalidates(client):
    assert client.query(TRIANGLES)["result"]["value"] == 6.0
    client.delete("Edge", [(2, 3), (3, 2)])
    reply = client.query(TRIANGLES)
    assert reply["cached"] is False
    assert reply["result"]["value"] == 6.0


def test_materialize_clears_cache(client, service):
    client.query(TRIANGLES)
    client.materialize("Deg", "Deg(x;d:long) :- Edge(x,y); "
                       "d=<<COUNT(y)>>.")
    assert len(service.cache) == 0
    assert client.query(TRIANGLES)["cached"] is False


def test_query_reading_installed_head_invalidates_on_reinstall(client):
    # P is installed by one program and read by another; re-executing
    # the installer bumps P's epoch, so the reader's entry is evicted.
    client.query(EDGE_PAIRS)
    reader = "R(;w:long) :- P(x,y); w=<<COUNT(*)>>."
    assert client.query(reader)["result"]["value"] == 8.0
    assert client.query(reader)["cached"] is True
    client.append("Edge", [(3, 4), (4, 3)])
    client.query(EDGE_PAIRS)  # re-installs P with the new edges
    reply = client.query(reader)
    assert reply["cached"] is False
    assert reply["result"]["value"] == 10.0


def test_cache_survives_across_connections(service):
    with ServeClient(port=service.port) as a:
        a.query(TRIANGLES)
    with ServeClient(port=service.port) as b:
        assert b.query(TRIANGLES)["cached"] is True


# -- program identity -------------------------------------------------------


def test_identity_is_alpha_invariant(service):
    db = service.db
    key_a, reads_a, heads_a = program_identity(db, TRIANGLES)
    renamed = ("T(;w:long) :- Edge(a,b),Edge(b,c),Edge(a,c); "
               "w=<<COUNT(*)>>.")
    key_b, reads_b, heads_b = program_identity(db, renamed)
    assert key_a == key_b
    assert reads_a == reads_b == frozenset(["Edge"])
    assert heads_a == heads_b == ("T",)


def test_identity_differs_across_programs(service):
    db = service.db
    assert program_identity(db, TRIANGLES)[0] \
        != program_identity(db, EDGE_PAIRS)[0]


def test_identity_read_set_expands_views(client, service):
    client.materialize("Deg", "Deg(x;d:long) :- Edge(x,y); "
                       "d=<<COUNT(y)>>.")
    _, reads, _ = program_identity(service.db,
                                   "H(x) :- Deg(x), Tag(x).")
    assert "Deg" in reads
    assert "Edge" in reads  # the view's base rides along
    assert "Tag" in reads


# -- ResultCache unit behavior ----------------------------------------------


def test_result_cache_stamp_mismatch_evicts():
    cache = ResultCache(capacity=4)
    cache.store("k", {"kind": "scalar", "value": 1.0}, 1, {"Edge": 0})
    assert cache.lookup("k", {"Edge": 0}) is not None
    assert cache.lookup("k", {"Edge": 1}) is None  # stale -> evicted
    assert cache.lookup("k", {"Edge": 0}) is None  # really gone
    assert cache.invalidations == 1


def test_result_cache_lru_bound():
    cache = ResultCache(capacity=2)
    for index in range(3):
        cache.store("k%d" % index, {}, 0, {})
    assert len(cache) == 2
    assert cache.lookup("k0", {}) is None  # oldest evicted
    assert cache.lookup("k2", {}) is not None


def test_result_cache_invalidate_names():
    cache = ResultCache()
    cache.store("a", {}, 0, {"Edge": 0})
    cache.store("b", {}, 0, {"Tag": 0})
    assert cache.invalidate_names(["Edge"]) == 1
    assert cache.lookup("b", {"Tag": 0}) is not None


# -- shutdown op ------------------------------------------------------------


def test_shutdown_op_drains():
    db = Database()
    db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)])
    service = QueryService(db).start()
    with ServeClient(port=service.port) as c:
        assert c.query(TRIANGLES)["status"] == "ok"
        ack = c.shutdown()
        assert ack["draining"] is True
    service._thread.join(timeout=30)
    assert not service._thread.is_alive()
    db.close()
