"""Serve-mode fuzzer smoke: the daemon differential must run clean on
generated cases, and must actually *catch* a daemon that lies.

The full sweep runs in CI via ``python -m repro.fuzz --serve``; these
tests keep the harness itself honest with a small budget.
"""

from repro.fuzz.gen import generate_mutation_case
from repro.fuzz.runner import (case_seed, run_serve_case,
                               run_serve_fuzz)
from repro.engine.config import enumerate_mutation_matrix

#: One config is plenty for the harness smoke — the full matrix runs
#: in the CI fuzz job.
MATRIX = enumerate_mutation_matrix()[:1]


def test_run_serve_fuzz_smoke():
    report = run_serve_fuzz(seed=0, budget=6, matrix=MATRIX)
    assert report.ok, report.describe()
    assert report.executed == 6


def test_serve_case_matches_direct_execution():
    case = generate_mutation_case(case_seed(11, 0))
    assert run_serve_case(case, MATRIX) is None


def test_planted_divergence_is_reported(monkeypatch):
    """Corrupt the served snapshot and the differ must flag it —
    proving the harness compares real payloads, not just statuses."""
    from repro.fuzz import runner as runner_mod
    case = generate_mutation_case(case_seed(11, 0))

    real_snapshot = runner_mod._serve_query_snapshot

    def lying_snapshot(client, checked_case):
        kind, results = real_snapshot(client, checked_case)
        if kind != "ok":
            return kind, results
        return kind, {name: ("scalar", -1.0) for name in results}

    monkeypatch.setattr(runner_mod, "_serve_query_snapshot",
                        lying_snapshot)
    failure = runner_mod.run_serve_case(case, MATRIX)
    assert failure is not None
    assert failure.kind == "serve-mismatch"
    assert "serve[" in failure.detail


def test_crashing_daemon_is_reported(monkeypatch):
    from repro.fuzz import runner as runner_mod
    case = generate_mutation_case(case_seed(11, 0))

    def exploding(checked_case, config):
        raise RuntimeError("daemon fell over")

    monkeypatch.setattr(runner_mod, "_serve_mutation_ops", exploding)
    failure = runner_mod.run_serve_case(case, MATRIX)
    assert failure is not None
    assert failure.kind == "crash"
    assert "daemon fell over" in failure.detail
