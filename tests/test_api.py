"""End-to-end tests of the Database façade."""

import numpy as np
import pytest

from repro import (Database, EngineConfig, QuerySyntaxError, SchemaError,
                   UnknownRelationError)


class TestLoading:
    def test_add_relation_arbitrary_values(self):
        db = Database()
        db.add_relation("Likes", [("ann", "bob"), ("bob", "cat")])
        result = db.query("Q(x,y) :- Likes(x,y).")
        assert set(result.tuples()) == {("ann", "bob"), ("bob", "cat")}

    def test_add_encoded(self):
        db = Database()
        db.add_encoded("R", [[0, 1], [2, 3]])
        assert db.query("Q(x,y) :- R(x,y).").count == 2

    def test_add_scalar_available_in_expressions(self):
        db = Database()
        db.add_encoded("R", [[0, 1]])
        db.add_scalar("K", 4.0)
        result = db.query("Q(x;v:float) :- R(x,y); v=2*K.")
        assert result.annotations.tolist() == [8.0]

    def test_load_graph_undirected_stores_both_directions(self):
        db = Database()
        db.load_graph("Edge", [(1, 2)])
        assert db.relation("Edge").cardinality == 2

    def test_load_graph_directed(self):
        db = Database()
        db.load_graph("Edge", [(1, 2)], undirected=False)
        assert db.relation("Edge").cardinality == 1

    def test_load_graph_prune_halves(self):
        db = Database()
        db.load_graph("Edge", [(1, 2), (2, 3)], prune=True)
        assert db.relation("Edge").cardinality == 2

    def test_reload_replaces(self):
        db = Database()
        db.load_graph("Edge", [(0, 1)])
        db.load_graph("Edge", [(5, 6), (6, 7)])
        assert set(db.query("Q(x,y) :- Edge(x,y).").tuples()) == {
            (5, 6), (6, 5), (6, 7), (7, 6)}

    def test_unknown_relation_lists_known(self):
        db = Database()
        db.load_graph("Edge", [(0, 1)])
        with pytest.raises(UnknownRelationError) as info:
            db.relation("Edgy")
        assert "Edge" in str(info.value)


class TestQuerying:
    def test_scalar_result(self):
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)], prune=True)
        result = db.query("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                          "w=<<COUNT(*)>>.")
        assert result.scalar == 1.0

    def test_scalar_guarded_on_tabular_result(self):
        db = Database()
        db.load_graph("Edge", [(0, 1)])
        result = db.query("Q(x,y) :- Edge(x,y).")
        with pytest.raises(SchemaError):
            result.scalar

    def test_to_dict_requires_annotations(self):
        db = Database()
        db.load_graph("Edge", [(0, 1)])
        with pytest.raises(SchemaError):
            db.query("Q(x,y) :- Edge(x,y).").to_dict()

    def test_to_dict_multi_key(self):
        db = Database()
        db.load_graph("Edge", [(0, 1)])
        result = db.query("Q(x,y;v:int) :- Edge(x,y); v=7.")
        assert result.to_dict() == {(0, 1): 7.0, (1, 0): 7.0}

    def test_intermediate_heads_persist(self):
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2)])
        db.query("Hop(x,y) :- Edge(x,z),Edge(z,y).")
        assert db.relation("Hop").cardinality > 0
        reuse = db.query("Q(x) :- Hop(x,x).")
        assert set(reuse.tuples()) == {(0,), (1,), (2,)}

    def test_syntax_errors_propagate(self):
        db = Database()
        with pytest.raises(QuerySyntaxError):
            db.query("broken(")

    def test_explain_mentions_ghd(self):
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)])
        text = db.explain("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                          "w=<<COUNT(*)>>.")
        assert "GHD" in text and "width" in text

    def test_counter_accumulates(self):
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)], prune=True)
        db.query("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                 "w=<<COUNT(*)>>.")
        assert db.counter.total_ops > 0


class TestConfiguration:
    def test_keyword_overrides(self):
        db = Database(layout_level="uint_only", simd=False)
        assert db.config.layout_level == "uint_only"
        assert not db.config.simd

    def test_explicit_config(self):
        config = EngineConfig(use_ghd=False)
        db = Database(config=config)
        assert not db.config.use_ghd

    def test_default_ordering_scheme(self):
        db = Database(ordering="identity")
        db.load_graph("Edge", [(5, 3)], undirected=False)
        # identity ordering: first-seen value gets id 0
        assert db.relation("Edge").data.tolist() == [[0, 1]]
