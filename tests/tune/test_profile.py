"""TuningProfile round-trip, tolerant loading, and persistence.

The acceptance bar under test: a profile survives serialization
bit-for-bit, rides along with a saved database, and *any* failure to
load (missing, corrupt, stale version, absurd values) degrades to
``None`` — paper-default constants — never an error.
"""

import json

import numpy as np
import pytest

from repro import Database
from repro.tune.profile import (PROFILE_VERSION, TuningProfile,
                                load_profile)

EDGES = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 0)]


def sample_profile():
    return TuningProfile(galloping_crossover=5.5,
                         density_threshold=96.0,
                         parallel_threshold=300,
                         fused_block_rows=1 << 20,
                         fused_probe_crossover=2.0,
                         source="calibrated")


class TestRoundTrip:
    def test_dict_round_trip_preserves_every_field(self):
        original = sample_profile()
        rebuilt = TuningProfile.from_dict(original.to_dict())
        assert rebuilt is not None
        assert rebuilt.to_dict() == original.to_dict()
        assert rebuilt.signature() == original.signature()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "profile.json"
        original = sample_profile()
        original.save(str(path))
        loaded = load_profile(str(path))
        assert loaded is not None
        assert loaded.signature() == original.signature()

    def test_none_fields_survive(self, tmp_path):
        original = TuningProfile(fused_probe_crossover=None)
        path = tmp_path / "profile.json"
        original.save(str(path))
        loaded = load_profile(str(path))
        assert loaded.fused_probe_crossover is None

    def test_signature_distinguishes_profiles(self):
        assert sample_profile().signature() \
            != TuningProfile().signature()


class TestTolerantLoading:
    def test_missing_file(self, tmp_path):
        assert load_profile(str(tmp_path / "absent.json")) is None

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert load_profile(str(path)) is None

    def test_stale_version(self, tmp_path):
        record = sample_profile().to_dict()
        record["version"] = PROFILE_VERSION + 1
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(record))
        assert load_profile(str(path)) is None

    def test_non_dict_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        assert load_profile(str(path)) is None

    def test_wrong_types_rejected(self):
        record = sample_profile().to_dict()
        record["galloping_crossover"] = "fast"
        assert TuningProfile.from_dict(record) is None

    def test_absurd_values_clamped(self):
        record = sample_profile().to_dict()
        record["fused_block_rows"] = 1          # would split every block
        record["galloping_crossover"] = 1e12    # would never gallop
        loaded = TuningProfile.from_dict(record)
        assert loaded.fused_block_rows >= 1 << 12
        assert loaded.galloping_crossover <= 4096.0


class TestDatabasePersistence:
    def test_profile_rides_along_with_save(self, tmp_path):
        db = Database(adaptive=True)
        db.config.tuning = sample_profile()
        db.load_graph("Edge", EDGES)
        path = str(tmp_path / "db.npz")
        db.save(path)
        restored = Database.load(path)
        assert restored.tuning is not None
        assert restored.tuning.signature() \
            == sample_profile().signature()
        # The profile alone never flips the behavior switch.
        assert restored.config.adaptive is False

    def test_save_without_profile_loads_none(self, tmp_path):
        db = Database()
        db.load_graph("Edge", EDGES)
        path = str(tmp_path / "db.npz")
        db.save(path)
        assert Database.load(path).tuning is None

    def test_restored_profile_gives_identical_results(self, tmp_path):
        query = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                 "w=<<COUNT(*)>>.")
        db = Database(adaptive=True)
        db.config.tuning = sample_profile()
        db.load_graph("Edge", EDGES)
        expected = db.query(query).scalar
        path = str(tmp_path / "db.npz")
        db.save(path)
        restored = Database.load(path, adaptive=True)
        assert restored.query(query).scalar == expected

    def test_pre_tuning_save_format_still_loads(self, tmp_path):
        # A database saved before tuning existed has no manifest entry;
        # load must treat that exactly like "no profile".
        db = Database()
        db.load_graph("Edge", EDGES)
        path = str(tmp_path / "db.npz")
        db.save(path)
        from repro.storage.persistence import load_tuning
        assert load_tuning(path) is None
