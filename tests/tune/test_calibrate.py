"""Calibration determinism and fit sanity.

The clock is injectable, so a fake monotone counter makes the whole
suite deterministic: same seed + same timer ⇒ byte-identical profile.
The fake advances by a fixed step per call, which means every timed
kernel "takes" the same interval — the fitters must then keep the
defaults (no sustained flip exists), exercising the None-fallback arms
without real timing noise.
"""

import numpy as np

from repro.tune.calibrate import _flip_point, calibrate
from repro.tune.profile import _BOUNDS, TuningProfile


class FakeTimer:
    """Monotone clock advancing a fixed step per call."""

    def __init__(self, step=1e-3):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestDeterminism:
    def test_same_seed_same_timer_identical_profiles(self):
        first = calibrate(seed=13, timer=FakeTimer(), quick=True)
        second = calibrate(seed=13, timer=FakeTimer(), quick=True)
        assert first.to_dict() == second.to_dict()

    def test_flat_timings_keep_defaults(self):
        # Equal time everywhere = no crossover evidence: every fitted
        # ratio field falls back to the paper default.
        profile = calibrate(seed=0, timer=FakeTimer(), quick=True)
        defaults = TuningProfile()
        assert profile.galloping_crossover \
            == defaults.galloping_crossover
        assert profile.density_threshold == defaults.density_threshold

    def test_source_marks_dataset_fit(self):
        rng = np.random.default_rng(0)
        sets = [np.sort(rng.choice(1 << 16, size=size, replace=False)
                        .astype(np.uint32))
                for size in (64, 256, 2048, 16384)]
        profile = calibrate(seed=0, timer=FakeTimer(), quick=True,
                            dataset_sets=sets)
        # Flat fake timings give the dataset fit no flip either; the
        # synthetic fit stands and source stays plain "calibrated".
        assert profile.source in ("calibrated", "calibrated+dataset")


class TestFlipPoint:
    def test_sustained_flip_takes_geometric_midpoint(self):
        grid = (1, 2, 4, 8, 16)
        wins = [True, True, False, False, False]
        assert _flip_point(grid, wins) == float(np.sqrt(2 * 4))

    def test_no_flip_returns_none(self):
        assert _flip_point((1, 2, 4), [True, True, True]) is None

    def test_small_regime_never_wins_flips_at_grid_start(self):
        # Galloping winning everywhere means the crossover sits at or
        # below the grid: the fit returns the lowest midpoint rather
        # than None, so the tuned engine gallops aggressively.
        assert _flip_point((1, 2, 4), [False, False, False]) \
            == float(np.sqrt(1 * 2))

    def test_unsustained_flip_ignored(self):
        # A single noisy loss in the middle must not set the crossover.
        grid = (1, 2, 4, 8)
        wins = [True, False, True, True]
        assert _flip_point(grid, wins) is None


class TestFitSanity:
    def test_real_quick_calibration_lands_in_bounds(self):
        # One live (wall-clock) calibration: whatever this machine
        # measures, every fitted constant must respect the load-time
        # clamps — the same invariant a saved-then-loaded profile has.
        profile = calibrate(seed=0, quick=True)
        for name, (low, high) in _BOUNDS.items():
            value = getattr(profile, name)
            if value is not None:
                assert low <= value <= high, (name, value)
        assert profile.source in ("calibrated", "calibrated+dataset")
        assert profile.fingerprint.get("cpu_count")
