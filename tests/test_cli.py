"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("# tiny triangle plus tail\n0 1\n1 2\n0 2\n2 3\n")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_command_parses(self):
        args = build_parser().parse_args(
            ["query", "--dataset", "patents", "--prune", "Q(x) :- E(x,y)."])
        assert args.dataset == "patents"
        assert args.prune


class TestCommands:
    TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                 "w=<<COUNT(*)>>.")

    def test_query_from_file(self, edge_file, capsys):
        code = main(["query", "--edges", edge_file, "--prune",
                     self.TRIANGLES])
        assert code == 0
        out = capsys.readouterr().out
        assert out.strip().startswith("1.0")

    def test_query_tabular_with_limit(self, edge_file, capsys):
        code = main(["query", "--edges", edge_file, "--limit", "2",
                     "Q(x,y) :- Edge(x,y)."])
        assert code == 0
        out = capsys.readouterr().out
        assert "more)" in out

    def test_explain(self, edge_file, capsys):
        code = main(["explain", "--edges", edge_file, self.TRIANGLES])
        assert code == 0
        assert "GHD" in capsys.readouterr().out

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "googleplus" in out and "twitter" in out

    def test_missing_source_errors(self):
        with pytest.raises(SystemExit):
            main(["query", self.TRIANGLES])

    def test_ablation_flags_flow_through(self, edge_file, capsys):
        code = main(["query", "--edges", edge_file, "--prune",
                     "--no-ghd", "--no-simd",
                     "--layout-level", "uint_only", self.TRIANGLES])
        assert code == 0
        assert capsys.readouterr().out.strip().startswith("1.0")


class TestObservabilityFlags:
    TRIANGLES = TestCommands.TRIANGLES

    def test_trace_writes_valid_chrome_json(self, edge_file, tmp_path,
                                            capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        trace = tmp_path / "trace.json"
        code = main(["query", "--edges", edge_file, "--prune",
                     "--trace", str(trace), self.TRIANGLES])
        assert code == 0
        assert "trace written to" in capsys.readouterr().err
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"]

    def test_metrics_printed_to_stderr(self, edge_file, capsys):
        code = main(["query", "--edges", edge_file, "--prune",
                     "--metrics", self.TRIANGLES])
        assert code == 0
        err = capsys.readouterr().err
        assert "metrics:" in err
        assert "queries" in err

    def test_explain_analyze_replaces_result_output(self, edge_file,
                                                    capsys):
        code = main(["query", "--edges", edge_file, "--prune",
                     "--explain-analyze", self.TRIANGLES])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE")
        assert "cost-model error:" in out
