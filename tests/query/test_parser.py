"""Unit tests for the query parser over the paper's Table 1 syntax."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query import (Agg, BinOp, Constant, Num, Ref, Variable,
                         expression_aggregates, expression_refs, parse,
                         parse_rule)


class TestConjunctiveRules:
    def test_triangle(self):
        rule = parse_rule("Triangle(x,y,z) :- R(x,y),S(y,z),T(x,z).")
        assert rule.head_name == "Triangle"
        assert rule.head_vars == ("x", "y", "z")
        assert [a.name for a in rule.body] == ["R", "S", "T"]
        assert not rule.recursive
        assert rule.annotation is None

    def test_barbell_with_primes(self):
        rule = parse_rule(
            "Barbell(x,y,z,x',y',z') :- R(x,y),S(y,z),T(x,z),U(x,x'),"
            "R'(x',y'),S'(y',z'),T'(x',z').")
        assert len(rule.body) == 7
        assert rule.head_vars[-1] == "z'"
        assert rule.body[4].name == "R'"

    def test_selection_constants(self):
        rule = parse_rule("S(x) :- Edge('start',x),P(x,3).")
        atom = rule.body[0]
        assert atom.terms[0] == Constant("start")
        assert atom.terms[1] == Variable("x")
        assert rule.body[1].terms[1] == Constant(3)
        assert atom.selections == ((0, Constant("start")),)
        assert atom.variables == ("x",)

    def test_body_variables_order_of_first_use(self):
        rule = parse_rule("Q(z) :- R(a,b),S(b,z),T(z,a).")
        assert rule.body_variables == ("a", "b", "z")


class TestAggregationHeads:
    def test_count_star(self):
        rule = parse_rule(
            "C(;w:long) :- R(x,y),S(y,z); w=<<COUNT(*)>>.")
        assert rule.head_vars == ()
        assert rule.annotation.var == "w"
        assert rule.annotation.type == "long"
        assert rule.aggregates == [Agg("COUNT", "*")]

    def test_keyed_aggregate(self):
        rule = parse_rule("D(x;c:int) :- Edge(x,y); c=<<COUNT(y)>>.")
        assert rule.head_vars == ("x",)
        assert rule.aggregates[0].arg == "y"

    def test_affine_expression(self):
        rule = parse_rule(
            "P(x;y:float) :- E(x,z),P(z); y=0.15+0.85*<<SUM(z)>>.")
        expr = rule.assignment
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert expr.left == Num(0.15)
        assert expr.right.op == "*"
        assert expression_aggregates(expr) == [Agg("SUM", "z")]

    def test_scalar_reference(self):
        rule = parse_rule("P(x;y:float) :- E(x,z); y=1/N.")
        assert expression_refs(rule.assignment) == ["N"]

    def test_parenthesized_expression(self):
        rule = parse_rule("P(x;y:float) :- E(x,z); y=(1+2)*3.")
        assert rule.assignment.op == "*"

    def test_annotation_without_assignment_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_rule("C(;w:long) :- R(x,y).")

    def test_assignment_var_must_match_annotation(self):
        with pytest.raises(QuerySyntaxError):
            parse_rule("C(;w:long) :- R(x,y); v=<<COUNT(*)>>.")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_rule("C(;w:long) :- R(x,y); w=<<MEDIAN(*)>>.")


class TestRecursionMarkers:
    def test_plain_star(self):
        rule = parse_rule("S(x;y:int)* :- E(w,x),S(w); y=<<MIN(w)>>+1.")
        assert rule.recursive
        assert rule.iterations is None

    def test_bounded_star(self):
        rule = parse_rule(
            "P(x;y:float)*[i=5] :- E(x,z),P(z); y=<<SUM(z)>>.")
        assert rule.recursive and rule.iterations == 5

    def test_str_round_trips_markers(self):
        rule = parse_rule(
            "P(x;y:float)*[i=5] :- E(x,z),P(z); y=<<SUM(z)>>.")
        assert "*[i=5]" in str(rule)


class TestPrograms:
    def test_multi_rule_program(self):
        program = parse(
            "A(x) :- R(x,y). B(x) :- A(x),S(x,z). ")
        assert len(program) == 2
        assert [r.head_name for r in program] == ["A", "B"]
        assert program.rules[1].references("A")

    def test_empty_program_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("   ")

    def test_parse_rule_rejects_multiple(self):
        with pytest.raises(QuerySyntaxError):
            parse_rule("A(x) :- R(x,y). B(x) :- R(x,y).")

    def test_error_carries_position_context(self):
        with pytest.raises(QuerySyntaxError) as info:
            parse("A(x) : R(x,y).")
        assert "position" in str(info.value)
