"""Round-trip tests: every Table 1 rule reparses from its rendering."""

import pytest

from repro.query import parse_rule

TABLE1_QUERIES = [
    "Triangle(x,y,z) :- R(x,y),S(y,z),T(x,z).",
    "FourClique(x,y,z,w) :- R(x,y),S(y,z),T(x,z),U(x,w),V(y,w),Q(z,w).",
    "Lollipop(x,y,z,w) :- R(x,y),S(y,z),T(x,z),U(x,w).",
    "Barbell(x,y,z,x',y',z') :- R(x,y),S(y,z),T(x,z),U(x,x'),"
    "R'(x',y'),S'(y',z'),T'(x',z').",
    "CountTriangle(;w:long) :- R(x,y),S(x,z),T(x,z); w=<<COUNT(*)>>.",
    "N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.",
    "PageRank(x;y:float) :- Edge(x,z); y=1/N.",
    "PageRank(x;y:float)*[i=5] :- Edge(x,z),PageRank(z),InvDeg(z); "
    "y=0.15+0.85*<<SUM(z)>>.",
    "SSSP(x;y:int) :- Edge('start',x); y=1.",
    "SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.",
    "S4Clique(x,y,z,w) :- R(x,y),S(y,z),T(x,z),U(x,w),V(y,w),Q(z,w),"
    "P(x,'node').",
    "SBarbell(x,y,z,x',y',z') :- R(x,y),S(y,z),T(x,z),U(x,'node'),"
    "V('node',x'),R'(x',y'),S'(y',z'),T'(x',z').",
]


@pytest.mark.parametrize("query", TABLE1_QUERIES)
def test_render_reparse_fixpoint(query):
    rule = parse_rule(query)
    rendered = str(rule)
    reparsed = parse_rule(rendered)
    assert str(reparsed) == rendered
    assert reparsed.head_name == rule.head_name
    assert reparsed.head_vars == rule.head_vars
    assert reparsed.body == rule.body
    assert reparsed.annotation == rule.annotation
    assert reparsed.assignment == rule.assignment
    assert reparsed.recursive == rule.recursive
    assert reparsed.iterations == rule.iterations
