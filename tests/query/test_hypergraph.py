"""Unit tests for query hypergraphs (paper §2.1)."""

from repro.query import Hypergraph, parse_rule


def hypergraph_of(text):
    return Hypergraph(parse_rule(text).body)


class TestStructure:
    def test_triangle(self):
        hg = hypergraph_of("T(x,y,z) :- R(x,y),S(y,z),T(x,z).")
        assert hg.n_vertices == 3
        assert hg.n_edges == 3
        assert hg.vertices == ("x", "y", "z")

    def test_duplicate_variable_sets_stay_distinct(self):
        hg = hypergraph_of("Q(x,y) :- R(x,y),S(x,y).")
        assert hg.n_edges == 2
        assert hg.edges[0].index != hg.edges[1].index
        assert hg.edges[0].varset == hg.edges[1].varset

    def test_edges_covering(self):
        hg = hypergraph_of("T(x,y,z) :- R(x,y),S(y,z),T(x,z).")
        assert [e.relation for e in hg.edges_covering("y")] == ["R", "S"]

    def test_selection_constants_do_not_create_vertices(self):
        hg = hypergraph_of("Q(x) :- R(x,'c').")
        assert hg.vertices == ("x",)
        assert hg.edges[0].variables == ("x",)


class TestConnectivity:
    def test_connected_query(self):
        hg = hypergraph_of("T(x,y,z) :- R(x,y),S(y,z),T(x,z).")
        assert hg.is_connected()
        assert len(hg.connected_components()) == 1

    def test_disconnected_query(self):
        hg = hypergraph_of("Q(a,b,c,d) :- R(a,b),S(c,d).")
        assert not hg.is_connected()
        assert len(hg.connected_components()) == 2

    def test_separator_splits_barbell(self):
        hg = hypergraph_of(
            "B(x,y,z,u,v,w) :- R(x,y),S(y,z),T(x,z),M(x,u),"
            "A(u,v),B(v,w),C(u,w).")
        components = hg.connected_components(
            separator=frozenset(["x", "u"]))
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3, 3]  # the bridge M and the two triangles

    def test_components_partition_edges(self):
        hg = hypergraph_of(
            "B(x,y,z,u,v,w) :- R(x,y),S(y,z),T(x,z),M(x,u),"
            "A(u,v),B(v,w),C(u,w).")
        components = hg.connected_components(separator=frozenset(["x"]))
        seen = sorted(e.index for c in components for e in c)
        assert seen == list(range(7))

    def test_empty_components(self):
        hg = hypergraph_of("Q(x) :- R(x,y).")
        assert hg.connected_components(edges=[]) == []
