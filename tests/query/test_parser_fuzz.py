"""Fuzz tests: the parser must never crash with anything but
QuerySyntaxError, and valid inputs must parse deterministically."""

import string

from hypothesis import given, settings, strategies as st

from repro.errors import QuerySyntaxError
from repro.query import parse

printable_text = st.text(
    alphabet=string.ascii_letters + string.digits
    + " (),.;:*<>='\"[]+-/#\n_'",
    max_size=120)


@given(text=printable_text)
@settings(max_examples=300, deadline=None)
def test_parser_total_on_arbitrary_text(text):
    try:
        program = parse(text)
        assert len(program) >= 1
    except QuerySyntaxError:
        pass  # the only acceptable failure mode


identifier = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)


@given(head=identifier,
       relations=st.lists(identifier, min_size=1, max_size=4),
       variables=st.lists(st.sampled_from("abcdexyz"), min_size=2,
                          max_size=4, unique=True))
@settings(max_examples=150, deadline=None)
def test_generated_valid_rules_always_parse(head, relations, variables):
    body = ",".join("%s(%s,%s)" % (rel, variables[i % len(variables)],
                                   variables[(i + 1) % len(variables)])
                    for i, rel in enumerate(relations))
    text = "%s(%s) :- %s." % (head, ",".join(variables), body)
    rule = parse(text).rules[0]
    assert rule.head_name == head
    assert len(rule.body) == len(relations)
    # And the rendering reparses identically.
    assert str(parse(str(rule)).rules[0]) == str(rule)
