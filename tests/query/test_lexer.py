"""Unit tests for the query tokenizer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


class TestTokenize:
    def test_basic_rule(self):
        tokens = kinds("T(x) :- R(x,y).")
        assert tokens == [
            ("IDENT", "T"), ("SYMBOL", "("), ("IDENT", "x"),
            ("SYMBOL", ")"), ("SYMBOL", ":-"), ("IDENT", "R"),
            ("SYMBOL", "("), ("IDENT", "x"), ("SYMBOL", ","),
            ("IDENT", "y"), ("SYMBOL", ")"), ("SYMBOL", "."),
        ]

    def test_primed_identifiers(self):
        tokens = kinds("R'(x',y')")
        assert tokens[0] == ("IDENT", "R'")
        assert ("IDENT", "x'") in tokens
        assert ("IDENT", "y'") in tokens

    def test_strings_both_quotes(self):
        tokens = kinds("E('start',\"stop\")")
        assert ("STRING", "'start'") in tokens
        assert ("STRING", '"stop"') in tokens

    def test_aggregate_brackets(self):
        tokens = kinds("w=<<COUNT(*)>>")
        assert ("SYMBOL", "<<") in tokens
        assert ("SYMBOL", ">>") in tokens
        assert ("SYMBOL", "*") in tokens

    def test_numbers(self):
        tokens = kinds("y=0.15+0.85")
        assert ("NUMBER", "0.15") in tokens
        assert ("NUMBER", "0.85") in tokens

    def test_comments_stripped(self):
        tokens = kinds("T(x) # trailing comment\n:- R(x). // another")
        assert all(t[0] != "WS" for t in tokens)
        assert ("SYMBOL", ":-") in tokens

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(QuerySyntaxError) as info:
            tokenize("T(x) :- R(x) @ S(x).")
        assert "@" in str(info.value)

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
