"""Tests for the differential query fuzzer (:mod:`repro.fuzz`)."""
