"""Replay the persistent fuzz corpus as ordinary pytest cases.

Every file under ``tests/fuzz_corpus/`` is a minimized program that
once exposed an engine bug.  Replaying each one across the differential
config matrix (plus the brute-force oracles) on every test run makes
those bugs structurally unable to regress silently.
"""

from pathlib import Path

import pytest

from repro.engine.config import enumerate_config_matrix
from repro.fuzz import load_corpus, run_case
from repro.fuzz.gen import validate_case

CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz_corpus"

CASES = load_corpus(CORPUS_DIR)

MATRIX = enumerate_config_matrix()


def test_corpus_is_not_empty():
    assert CASES, "expected minimized regressions in %s" % CORPUS_DIR


@pytest.mark.parametrize("name,case", CASES,
                         ids=[name for name, _ in CASES])
def test_corpus_case_passes_differentially(name, case):
    assert validate_case(case), "corpus case no longer parses as a " \
                                "well-formed program"
    failure = run_case(case, MATRIX)
    assert failure is None, failure.describe()
