"""Smoke tests for the fuzzer itself: generator, oracles, runner,
corpus round-trip, and the config matrix."""

import pytest

from repro.engine.config import enumerate_config_matrix
from repro.fuzz import (evaluate_case, generate_case, load_corpus,
                       run_case, run_fuzz, save_case, validate_case)
from repro.fuzz.corpus import case_from_dict, case_to_dict
from repro.fuzz.runner import case_seed
from tests import reference


def test_generator_is_deterministic():
    a, b = generate_case(42), generate_case(42)
    assert a.program_text == b.program_text
    assert [r.tuples for r in a.relations] == \
        [r.tuples for r in b.relations]
    assert [r.annotations for r in a.relations] == \
        [r.annotations for r in b.relations]


@pytest.mark.parametrize("seed", range(0, 60, 7))
def test_generated_cases_are_well_formed(seed):
    assert validate_case(generate_case(seed))


def test_generator_covers_the_language_surface():
    """Across a modest seed range, every major feature must appear."""
    seen = set()
    for seed in range(250):
        case = generate_case(seed)
        for rule in case.rules:
            if rule.recursive:
                seen.add("recursive")
                seen.add("replace" if rule.iterations is not None
                         else "fixpoint")
            if rule.aggregates:
                seen.add(rule.aggregates[0].op)
            elif rule.annotation is not None:
                seen.add("constant-annotation")
            else:
                seen.add("set")
            if len(rule.body) >= 3:
                seen.add("multiway")
            for atom in rule.body:
                if len(set(v.name for v in atom.terms
                           if type(v).__name__ == "Variable")) \
                        < len(atom.terms):
                    seen.add("constant-or-repeat")
        if len(case.rules) >= 2:
            seen.add("multirule")
    for feature in ("recursive", "replace", "fixpoint", "SUM", "MIN",
                    "MAX", "COUNT", "set", "constant-annotation",
                    "multiway", "multirule", "constant-or-repeat"):
        assert feature in seen, feature


def test_oracle_agrees_with_reference_evaluator():
    """The two brute-force implementations (backtracking vs
    itertools.product) must agree with each other, engine aside."""
    checked = 0
    for seed in range(40):
        case = generate_case(seed)
        base = {r.name: (list(r.tuples),
                         dict(zip(r.tuples, r.annotations))
                         if r.annotations is not None else None)
                for r in case.relations}
        try:
            expected = reference.evaluate_program(base, case.rules)
        except reference.ReferenceDiverged:
            continue
        assert evaluate_case(case) == expected, case
        checked += 1
    assert checked >= 30


def test_run_fuzz_smoke():
    report = run_fuzz(seed=0, budget=25,
                      matrix=enumerate_config_matrix())
    assert report.ok, report.describe()
    assert report.executed == 25


def test_case_seed_is_stable():
    assert case_seed(0, 0) != case_seed(0, 1)
    assert case_seed(7, 3) == case_seed(7, 3)
    assert 0 <= case_seed(123456789, 999) < 2 ** 31


def test_corpus_round_trip(tmp_path):
    case = generate_case(17)
    case.description = "round trip"
    path = save_case(case, directory=tmp_path)
    loaded = load_corpus(tmp_path)
    assert len(loaded) == 1 and loaded[0][0] == path.name
    restored = loaded[0][1]
    assert restored.program_text == case.program_text
    assert [r.tuples for r in restored.relations] == \
        [r.tuples for r in case.relations]
    assert case_to_dict(case_from_dict(case_to_dict(case))) == \
        case_to_dict(case)


def test_config_matrix_labels_are_unique():
    covering = enumerate_config_matrix()
    labels = [label for label, _ in covering]
    assert len(labels) == len(set(labels))
    assert "interp" in labels and "compiled" in labels
    assert "fused" in labels and "shared-tries" in labels
    assert "fused-shared" in labels
    full = enumerate_config_matrix(full=True)
    # 3 modes (interpreted/compiled/fused) x 3 parallel x 2 opt x 4 layouts
    assert len(full) == 72
    assert len({label for label, _ in full}) == 72


def test_run_case_reports_a_planted_oracle_disagreement(monkeypatch):
    """A corrupted oracle layer must surface as an ``oracle`` failure —
    proving the runner actually consults it."""
    from repro.fuzz import runner as runner_mod
    case = generate_case(3)
    assert run_case(case, enumerate_config_matrix()) is None

    def wrong_oracle(checked_case):
        return {name: ("scalar", 12345.0)
                for name in evaluate_case(checked_case)}

    monkeypatch.setattr(runner_mod, "evaluate_case", wrong_oracle)
    failure = runner_mod.run_case(case, enumerate_config_matrix(),
                                  check_reference=False)
    assert failure is not None and failure.kind == "oracle"
