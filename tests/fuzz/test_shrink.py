"""Shrinker tests: delta-debugging against a seeded injected bug.

The "engine under test" here is the brute-force oracle with a planted
defect — it silently drops every ``R0`` tuple containing the value 0
(the shape of an off-by-one in a kernel).  The shrinker must take a
multi-rule failing program and reduce it to the essence of that bug:
one or two atoms and a handful of tuples, still failing.
"""

import pytest

from repro.fuzz import generate_case, shrink_case
from repro.fuzz.gen import validate_case
from repro.fuzz.oracle import OracleError, evaluate_case


def buggy_evaluate(case):
    """The oracle with the injected defect."""
    mutant = case.copy()
    for relation in mutant.relations:
        if relation.name != "R0":
            continue
        kept = [i for i, row in enumerate(relation.tuples)
                if 0 not in row]
        relation.tuples = [relation.tuples[i] for i in kept]
        if relation.annotations is not None:
            relation.annotations = [relation.annotations[i]
                                    for i in kept]
    return evaluate_case(mutant)


def exposes_bug(case):
    try:
        return buggy_evaluate(case) != evaluate_case(case)
    except OracleError:
        return False


def find_multi_rule_failing_case():
    """First generated case with several rules/atoms that trips the
    injected bug — deterministic given the generator."""
    for seed in range(300):
        case = generate_case(seed)
        atoms = sum(len(rule.body) for rule in case.rules)
        if len(case.rules) >= 2 and atoms >= 4 and exposes_bug(case):
            return case
    pytest.fail("no multi-rule case exposed the injected bug")


def test_shrinker_reduces_injected_bug_to_two_atoms():
    case = find_multi_rule_failing_case()
    shrunk = shrink_case(case, exposes_bug)
    assert validate_case(shrunk)
    assert exposes_bug(shrunk), "shrinker lost the failure"
    rules, atoms, tuples, _ = shrunk.size()
    assert rules == 1
    assert atoms <= 2, "expected <=2 atoms, got %d:\n%s" % (atoms, shrunk)
    assert tuples <= 6, "expected a handful of tuples:\n%s" % shrunk
    assert shrunk.history, "reduction trail should be recorded"
    # The essence of the bug must survive: an R0 tuple containing 0.
    r0 = [r for r in shrunk.relations if r.name == "R0"]
    assert r0 and any(0 in row for row in r0[0].tuples)


def test_shrinker_is_identity_on_non_failing_cases():
    case = generate_case(0)
    shrunk = shrink_case(case, lambda c: False)
    assert shrunk.size() == case.size()
    assert shrunk.program_text == case.program_text
