"""Frontend lowering and logical-IR identity tests."""

import numpy as np
import pytest

from repro.errors import ExecutionError, UnknownRelationError
from repro.lir import build_rule, normalize_atom
from repro.lir.ir import LogicalRule
from repro.query import parse_rule
from repro.storage import Relation


def catalog_with_edges(rows, annotations=None):
    return {"E": Relation("E", np.asarray(rows, dtype=np.uint32),
                          annotations)}


class TestNormalizeAtom:
    def test_passthrough_shares_source_relation(self):
        catalog = catalog_with_edges([[0, 1], [1, 2]])
        atom = parse_rule("Q(x,y) :- E(x,y).").body[0]
        logical = normalize_atom(atom, catalog)
        assert logical.relation is catalog["E"]
        assert logical.sig_name == "E"
        assert logical.variables == ("x", "y")

    def test_unknown_relation(self):
        atom = parse_rule("Q(x,y) :- R(x,y).").body[0]
        with pytest.raises(UnknownRelationError):
            normalize_atom(atom, {})

    def test_arity_mismatch(self):
        catalog = catalog_with_edges([[0, 1]])
        atom = parse_rule("Q(x) :- E(x,y,z).").body[0]
        with pytest.raises(ExecutionError):
            normalize_atom(atom, catalog)

    def test_selection_derives_lazily(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        atom = parse_rule("Q(x) :- E(x,2).").body[0]
        logical = normalize_atom(atom, catalog)
        assert logical.is_selection
        assert logical._relation is None  # nothing materialized yet
        derived = logical.relation
        assert derived.cardinality == 2
        assert derived.arity == 1
        assert logical.relation is derived  # memoized

    def test_repeated_variable_becomes_equality(self):
        catalog = catalog_with_edges([[0, 0], [0, 1], [2, 2]])
        atom = parse_rule("Q(x) :- E(x,x).").body[0]
        logical = normalize_atom(atom, catalog)
        assert logical.variables == ("x",)
        assert sorted(logical.relation.data[:, 0].tolist()) == [0, 2]


class TestSigName:
    """Selection-aware identity: the fix for the R(x,1)/R(x,2) aliasing
    a bare-relation-name bag signature would produce."""

    def test_different_constants_different_sig(self):
        catalog = catalog_with_edges([[0, 1], [0, 2]])
        one = normalize_atom(parse_rule("Q(x) :- E(x,1).").body[0],
                             catalog)
        two = normalize_atom(parse_rule("Q(x) :- E(x,2).").body[0],
                             catalog)
        assert one.sig_name != two.sig_name
        assert one.sig_name != "E"

    def test_same_selection_same_sig(self):
        catalog = catalog_with_edges([[0, 1], [0, 2]])
        first = normalize_atom(parse_rule("Q(x) :- E(x,2).").body[0],
                               catalog)
        second = normalize_atom(parse_rule("Q(a) :- E(a,2).").body[0],
                                catalog)
        assert first.sig_name == second.sig_name

    def test_pruned_atom_changes_sig(self):
        catalog = catalog_with_edges([[0, 1], [1, 2]])
        full = normalize_atom(parse_rule("Q(x,y) :- E(x,y).").body[0],
                              catalog)
        pruned = full.pruned({"y"})
        assert pruned.sig_name != full.sig_name
        assert pruned.variables == ("x",)
        assert sorted(pruned.relation.data[:, 0].tolist()) == [0, 1]


class TestBuildRule:
    def test_guard_split(self):
        catalog = catalog_with_edges([[0, 1]])
        rule = parse_rule("Q(x,y) :- E(x,y),E(0,1).")
        logical = build_rule(rule, catalog)
        assert len(logical.atoms) == 1
        assert len(logical.guard_atoms) == 1
        assert not logical.has_empty_guard

    def test_empty_guard_detected(self):
        catalog = catalog_with_edges([[0, 1]])
        rule = parse_rule("Q(x,y) :- E(x,y),E(1,0).")
        logical = build_rule(rule, catalog)
        assert logical.has_empty_guard

    def test_unbound_head_recorded_not_raised(self):
        catalog = catalog_with_edges([[0, 1]])
        logical = build_rule(parse_rule("Q(x,z) :- E(x,y)."), catalog)
        assert logical.unbound_head == ["z"]

    def test_multi_aggregate_recorded(self):
        catalog = catalog_with_edges([[0, 1]])
        rule = parse_rule(
            "Q(;w:long) :- E(x,y); w=<<SUM(x)>>+<<SUM(y)>>.")
        logical = build_rule(rule, catalog)
        assert logical.too_many_aggregates


class TestCacheKey:
    def _key(self, text, catalog):
        return build_rule(parse_rule(text), catalog).cache_key()

    def test_alpha_rename_invariant(self):
        catalog = catalog_with_edges([[0, 1], [1, 2]])
        a = self._key("T(x,y,z) :- E(x,y),E(y,z),E(x,z).", catalog)
        b = self._key("T(p,q,r) :- E(p,q),E(q,r),E(p,r).", catalog)
        assert a == b

    def test_distinct_patterns_distinct_keys(self):
        catalog = catalog_with_edges([[0, 1], [1, 2]])
        triangle = self._key("T(x,y,z) :- E(x,y),E(y,z),E(x,z).", catalog)
        path = self._key("T(x,y,z) :- E(x,y),E(y,z).", catalog)
        assert triangle != path

    def test_selection_constant_in_key(self):
        catalog = catalog_with_edges([[0, 1], [0, 2]])
        assert self._key("Q(x) :- E(x,1).", catalog) \
            != self._key("Q(x) :- E(x,2).", catalog)

    def test_head_permutation_changes_key(self):
        catalog = catalog_with_edges([[0, 1]])
        assert self._key("Q(x,y) :- E(x,y).", catalog) \
            != self._key("Q(y,x) :- E(x,y).", catalog)

    def test_assignment_alpha_invariant(self):
        catalog = catalog_with_edges([[0, 1]])
        a = self._key("Q(x;w:long) :- E(x,y); w=<<SUM(y)>>.", catalog)
        b = self._key("Q(p;v:long) :- E(p,q); v=<<SUM(q)>>.", catalog)
        assert a == b


class TestWithHead:
    def test_count_distinct_pseudo_head(self):
        catalog = catalog_with_edges([[0, 1], [0, 2]])
        rule = parse_rule("Q(x;w:long) :- E(x,y); w=<<COUNT(y)>>.")
        logical = build_rule(rule, catalog)
        pseudo = logical.with_head(("x", "y"))
        assert isinstance(pseudo, LogicalRule)
        assert pseudo.head_vars == ("x", "y")
        assert pseudo.annotation is None
        assert pseudo.assignment is None
        # Rewritten atoms carry over by identity.
        assert all(a is b for a, b in zip(pseudo.atoms, logical.atoms))
