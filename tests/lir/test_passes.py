"""Unit tests for the optimizer passes and the layering checker."""

import importlib.util
import os
import warnings

import numpy as np
import pytest

from repro.lir import OptimizerOptions, optimize_rule, plan_rule
from repro.lir.passes import (REWRITE_PASSES, PassTrace, _default_size_warned,
                              _report_default_sizes, _run_phase)
from repro.obs.metrics import MetricsRegistry
from repro.query import parse_rule
from repro.query.ast import BinOp, Num
from repro.storage import Relation


def catalog_with_edges(rows):
    return {"E": Relation("E", np.asarray(rows, dtype=np.uint32))}


def optimize(text, catalog, **option_overrides):
    options = OptimizerOptions(**option_overrides)
    logical = optimize_rule(parse_rule(text), catalog, options)
    plan_rule(logical, options)
    return logical


class TestConstantFolding:
    def test_folds_constant_subtree(self):
        catalog = catalog_with_edges([[0, 1]])
        logical = optimize("Q(;w:long) :- E(x,y); w=1+2.", catalog)
        assert isinstance(logical.assignment, Num)
        assert logical.assignment.value == 3

    def test_division_by_zero_left_in_place(self):
        catalog = catalog_with_edges([[0, 1]])
        logical = optimize_rule(
            parse_rule("Q(;w:long) :- E(x,y); w=1/0."), catalog,
            OptimizerOptions())
        assert isinstance(logical.assignment, BinOp)

    def test_disabled_pass_recorded_in_trace(self):
        catalog = catalog_with_edges([[0, 1]])
        logical = optimize("Q(;w:long) :- E(x,y); w=1+2.", catalog,
                           fold_constants=False)
        assert isinstance(logical.assignment, BinOp)
        folding = [r for r in logical.trace.records
                   if r.name == "constant_folding"]
        assert folding and folding[0].details == \
            ["disabled by configuration"]


class TestAttributePruning:
    def test_existential_variable_dropped(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        logical = optimize("Q(x) :- E(x,y).", catalog)
        (atom,) = logical.atoms
        assert atom.variables == ("x",)
        assert sorted(atom.relation.data[:, 0].tolist()) == [0, 1]

    def test_fully_pruned_atom_becomes_guard(self):
        catalog = catalog_with_edges([[0, 1]])
        logical = optimize("Q(x,y) :- E(x,y),E(z,w).", catalog)
        assert len(logical.atoms) == 1
        assert len(logical.guard_atoms) == 1
        assert not logical.has_empty_guard

    def test_reverts_when_body_would_empty(self):
        catalog = catalog_with_edges([[0, 1]])
        logical = optimize("Q(x) :- E(y,z).", catalog)
        # All variables were droppable; the pass must keep the original
        # body rather than hand the planner an empty hypergraph.
        assert len(logical.atoms) == 1
        assert logical.atoms[0].variables == ("y", "z")
        pruning = [r for r in logical.trace.records
                   if r.name == "attribute_pruning"]
        assert pruning[0].details == \
            ["skipped: pruning would empty the body"]

    def test_skips_aggregating_rules(self):
        catalog = catalog_with_edges([[0, 1], [0, 2]])
        logical = optimize("N(;w:long) :- E(x,y); w=<<COUNT(*)>>.",
                           catalog)
        (atom,) = logical.atoms
        assert atom.variables == ("x", "y")  # duplicates feed COUNT

    def test_skips_annotated_atoms(self):
        catalog = {"E": Relation("E",
                                 np.asarray([[0, 1]], dtype=np.uint32),
                                 np.asarray([2.5]))}
        logical = optimize("Q(x) :- E(x,y).", catalog)
        assert logical.atoms[0].variables == ("x", "y")


class TestIdempotence:
    """Running a phase twice must be a no-op the second time."""

    def test_rewrite_phase_idempotent(self):
        catalog = catalog_with_edges([[0, 1], [1, 2]])
        options = OptimizerOptions()
        logical = optimize_rule(
            parse_rule("Q(x;w:long) :- E(x,y),E(y,z); w=1+2."),
            catalog, options)
        atoms_after = [str(a) for a in logical.atoms]
        assignment_after = logical.assignment
        logical.trace = PassTrace()
        _run_phase(REWRITE_PASSES, logical, options)
        assert [str(a) for a in logical.atoms] == atoms_after
        assert logical.assignment is assignment_after
        assert all(not r.changed for r in logical.trace.records)

    def test_plan_phase_stable_on_rerun(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        options = OptimizerOptions()
        logical = optimize_rule(
            parse_rule("T(x,y,z) :- E(x,y),E(y,z),E(x,z),E(x,0)."),
            catalog, options)
        plan_rule(logical, options)
        first = (logical.ghd.width(), logical.ghd.n_nodes,
                 len(logical.duplicates), logical.global_order)
        plan_rule(logical, options)
        second = (logical.ghd.width(), logical.ghd.n_nodes,
                  len(logical.duplicates), logical.global_order)
        assert first == second


class TestGHDChoice:
    def test_real_cardinalities_in_trace(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        logical = optimize("T(x,y,z) :- E(x,y),E(y,z),E(x,z).", catalog)
        ghd = [r for r in logical.trace.records if r.name == "ghd_choice"]
        assert any("cardinalities: " in d and "E=3" in d
                   for d in ghd[0].details)

    def test_default_size_fallback_warns_once_and_counts(self):
        metrics = MetricsRegistry()
        _default_size_warned[0] = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                _report_default_sizes(2, metrics)
                _report_default_sizes(1, metrics)
            assert len(caught) == 1
            assert issubclass(caught[0].category, RuntimeWarning)
            assert "DEFAULT_SIZE" in str(caught[0].message)
            assert metrics.counters["ghd.default_size_uses"].value == 3
        finally:
            _default_size_warned[0] = True


class TestGHDBandMemo:
    TRIANGLE = "T(x,y,z) :- E(x,y),E(y,z),E(x,z)."

    @staticmethod
    def ghd_detail(logical):
        (record,) = [r for r in logical.trace.records
                     if r.name == "ghd_choice"]
        return "\n".join(record.details)

    def test_same_band_reuses_decomposition(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2], [2, 0]])
        memo = {}
        first = optimize(self.TRIANGLE, catalog, ghd_memo=memo)
        assert "reused decomposition" not in self.ghd_detail(first)
        assert len(memo) == 1
        # One more row: cardinality 4 -> 5 stays in the same log2 band.
        catalog["E"] = Relation(
            "E", np.asarray([[0, 1], [0, 2], [1, 2], [2, 0], [1, 0]],
                            dtype=np.uint32))
        second = optimize(self.TRIANGLE, catalog, ghd_memo=memo)
        assert "reused decomposition" in self.ghd_detail(second)
        assert second.ghd.n_nodes == first.ghd.n_nodes
        assert second.ghd.width() == first.ghd.width()
        # Replayed nodes are fresh objects over the new hypergraph.
        assert second.ghd.root is not first.ghd.root
        assert not second.ghd.validate()

    def test_band_crossing_replans(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        memo = {}
        optimize(self.TRIANGLE, catalog, ghd_memo=memo)
        catalog["E"] = Relation(
            "E", np.asarray([[i, i + 1] for i in range(40)],
                            dtype=np.uint32))
        logical = optimize(self.TRIANGLE, catalog, ghd_memo=memo)
        assert "reused decomposition" not in self.ghd_detail(logical)
        assert len(memo) == 2

    def test_cardinality_overrides_join_the_key(self):
        # Adaptive mispredict feedback must always force a fresh plan,
        # even when the real cardinalities stayed in band.
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        memo = {}
        optimize(self.TRIANGLE, catalog, ghd_memo=memo)
        logical = optimize(self.TRIANGLE, catalog, ghd_memo=memo,
                           card_overrides={"E": 3})
        assert "reused decomposition" not in self.ghd_detail(logical)
        assert len(memo) == 2

    def test_disabled_without_a_memo(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        logical = optimize(self.TRIANGLE, catalog)
        assert "reused decomposition" not in self.ghd_detail(logical)


class TestSelectionPushdown:
    def test_duplicates_recorded(self):
        catalog = catalog_with_edges(
            [[0, 1], [0, 2], [1, 2], [2, 0]])
        logical = optimize(
            "Q(x,y,z) :- E(x,y),E(y,z),E(x,0).", catalog)
        assert logical.selected_vars == frozenset({"x"})

    def test_trace_renders_pipeline(self):
        catalog = catalog_with_edges([[0, 1], [0, 2], [1, 2]])
        logical = optimize("T(x,y,z) :- E(x,y),E(y,z),E(x,z).", catalog)
        text = logical.trace.describe()
        assert "logical plan (pass pipeline):" in text
        for name in ("build", "constant_folding", "attribute_pruning",
                     "ghd_choice", "selection_pushdown",
                     "attribute_order"):
            assert name in text


class TestLayeringChecker:
    """The CI script that enforces the four-layer import discipline."""

    @staticmethod
    def load_checker():
        root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        path = os.path.join(root, "tools", "check_layering.py")
        spec = importlib.util.spec_from_file_location("check_layering",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module, root

    def test_source_tree_is_clean(self):
        checker, root = self.load_checker()
        assert checker.check(os.path.join(root, "src")) == []

    def test_detects_lir_importing_engine(self, tmp_path):
        checker, _ = self.load_checker()
        package = tmp_path / "repro" / "lir"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(
            "from repro.engine import RuleExecutor\n")
        violations = checker.check(str(tmp_path))
        assert len(violations) == 1
        assert "repro.lir.bad imports repro.engine" in violations[0]

    def test_detects_relative_escape(self, tmp_path):
        checker, _ = self.load_checker()
        package = tmp_path / "repro" / "lir"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(
            "def late():\n    from ..engine import executor\n")
        violations = checker.check(str(tmp_path))
        assert len(violations) == 1

    def test_allows_engine_importing_lir(self, tmp_path):
        checker, _ = self.load_checker()
        package = tmp_path / "repro" / "engine"
        package.mkdir(parents=True)
        (package / "fine.py").write_text("from ..lir import plan_rule\n")
        assert checker.check(str(tmp_path)) == []


class TestValidationOrder:
    """Empty guards short-circuit before unbound-head errors (the old
    executor behaved this way; the split must preserve it)."""

    def test_empty_guard_beats_unbound_head(self):
        from repro.engine import EngineConfig, RuleExecutor
        catalog = catalog_with_edges([[0, 1]])
        executor = RuleExecutor(catalog, EngineConfig())
        out = executor.execute(parse_rule("Q(q) :- E(x,y),E(9,9)."))
        assert out.cardinality == 0

    def test_unbound_head_still_raises(self):
        from repro.engine import EngineConfig, RuleExecutor
        from repro.errors import PlanError
        catalog = catalog_with_edges([[0, 1]])
        executor = RuleExecutor(catalog, EngineConfig())
        with pytest.raises(PlanError):
            executor.execute(parse_rule("Q(q) :- E(x,y)."))
