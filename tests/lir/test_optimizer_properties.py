"""Property tests for the optimizer: semantics preservation, plan-cache
canonicalization, and cross-rule CSE correctness."""

import pytest

from repro import Database
from repro.graphs import uniform_graph

#: Queries exercising every rewrite: pruning (existential tails),
#: folding (constant subtrees), selections, guards, aggregates, and a
#: shared-bag program for CSE.
CORPUS = [
    "T(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).",
    "P(x,y) :- Edge(x,y),Edge(y,z),Edge(z,w).",
    "S(y) :- Edge(0,y).",
    "N(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.",
    "D(x;c:long) :- Edge(x,y); c=<<COUNT(y)>>.",
    "C(x;v:float) :- Edge(x,y); v=0.3*0.5.",
    "G(x,y) :- Edge(x,y),Edge(0,1).",
    ("A(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z). "
     "B(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z)."),
]

EDGES = [tuple(e) for e in uniform_graph(60, 200, seed=11)]


def make_db(**overrides):
    db = Database(**overrides)
    db.load_graph("Edge", EDGES, prune=False)
    return db


def snapshot(result):
    """Comparable value for either scalar or relational output."""
    if result.relation.is_scalar():
        return ("scalar", result.scalar)
    if result.relation.annotations is not None:
        return ("annotated", sorted(
            (row, ann) for row, ann in zip(result.tuples(),
                                           result.annotations.tolist())))
    return ("set", sorted(result.tuples()))


@pytest.mark.parametrize("text", CORPUS)
def test_rewrites_preserve_semantics(text):
    """Optimized output == output with every rewrite disabled."""
    baseline = make_db(prune_attributes=False, fold_constants=False,
                       cross_rule_cse=False)
    optimized = make_db()
    assert snapshot(optimized.query(text)) == snapshot(baseline.query(text))


@pytest.mark.parametrize("text", CORPUS)
def test_interpreted_compiled_parity(text):
    """Both execution modes run the same logical pipeline and agree."""
    interpreted = make_db(execution_mode="interpreted")
    compiled = make_db(execution_mode="compiled")
    assert snapshot(compiled.query(text)) \
        == snapshot(interpreted.query(text))


class TestPlanCacheCanonicalization:
    """The compiled plan cache keys on the canonicalized logical IR, so
    alpha-renamed queries share one entry."""

    def test_alpha_renamed_query_is_a_cache_hit(self):
        db = make_db(execution_mode="compiled")
        first = db.query("T(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).")
        assert db.last_stats.plan_cache_misses == 1
        second = db.query("T(a,b,c) :- Edge(a,b),Edge(b,c),Edge(a,c).")
        assert db.last_stats.plan_cache_hits == 1
        assert db.last_stats.plan_cache_misses == 0
        assert db.last_stats.ghd_builds == 0  # no re-planning
        assert sorted(second.tuples()) == sorted(first.tuples())

    def test_different_selection_constants_do_not_collide(self):
        db = make_db(execution_mode="compiled")
        one = db.query("S(y) :- Edge(0,y).")
        two = db.query("S(y) :- Edge(1,y).")
        assert db.last_stats.plan_cache_hits == 0
        assert sorted(one.tuples()) != sorted(two.tuples())

    def test_folded_constants_share_an_entry(self):
        """Constant folding runs before the cache key is computed, so
        `0.15` and `0.3*0.5` canonicalize to the same plan."""
        db = make_db(execution_mode="compiled")
        first = db.query("C(x;v:float) :- Edge(x,y); v=0.3*0.5.")
        second = db.query("C(x;v:float) :- Edge(x,y); v=0.15.")
        assert db.last_stats.plan_cache_hits == 1
        assert snapshot(second) == snapshot(first)


class TestCrossRuleCSE:
    PROGRAM = ("A(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z). "
               "B(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).")

    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_shared_bag_reused_with_identical_results(self, mode):
        db = make_db(execution_mode=mode)
        metrics = db.enable_metrics()
        db.query(self.PROGRAM)
        assert metrics.counters["cse.bag_hits"].value >= 1
        assert sorted(db.relation("A").decoded_tuples()) \
            == sorted(db.relation("B").decoded_tuples())

    def test_disabled_cse_takes_no_shortcuts(self):
        db = make_db(cross_rule_cse=False)
        metrics = db.enable_metrics()
        db.query(self.PROGRAM)
        assert metrics.counters.get("cse.bag_hits") is None \
            or metrics.counters["cse.bag_hits"].value == 0

    def test_catalog_replacement_invalidates_memo(self):
        """A memo entry is only valid while its source relations are the
        live catalog objects; replacing Edge between programs must not
        serve stale bags."""
        db = make_db()
        db.query(self.PROGRAM)
        before = sorted(db.relation("A").decoded_tuples())
        small = [(0, 1), (1, 2), (0, 2)]
        db.load_graph("Edge", small, prune=False)
        db.query(self.PROGRAM)
        after = sorted(db.relation("A").decoded_tuples())
        fresh = Database()
        fresh.load_graph("Edge", small, prune=False)
        expected = sorted(fresh.query(
            "A(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).").tuples())
        assert after == expected
        assert after != before
