"""Tests for the error hierarchy and the physical-plan records."""

import pytest

from repro import (Database, EmptyHeadedError, ExecutionError, LayoutError,
                   PlanError, QuerySyntaxError, SchemaError,
                   UnknownRelationError)
from repro.engine import BagPlan, PhysicalPlan


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for cls in (QuerySyntaxError, PlanError, ExecutionError,
                    SchemaError, UnknownRelationError, LayoutError):
            assert issubclass(cls, EmptyHeadedError)

    def test_unknown_relation_is_schema_error(self):
        assert issubclass(UnknownRelationError, SchemaError)

    def test_syntax_error_position_rendering(self):
        err = QuerySyntaxError("bad token", position=4,
                               text="Q(x) %%% :- R(x).")
        assert "position 4" in str(err)

    def test_syntax_error_without_position(self):
        assert str(QuerySyntaxError("plain")) == "plain"

    def test_single_except_catches_everything(self):
        db = Database()
        for bad in ("nope(", "Q(x) :- Missing(x)."):
            with pytest.raises(EmptyHeadedError):
                db.query(bad)


class TestPhysicalPlan:
    def triangle_plan(self):
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)], prune=True)
        db.query("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                 "w=<<COUNT(*)>>.")
        return db._executor.last_plan

    def test_triangle_plan_details(self):
        plan = self.triangle_plan()
        assert isinstance(plan, PhysicalPlan)
        assert plan.aggregate_mode
        assert not plan.used_top_down
        assert len(plan.bags) == 1
        bag = plan.bags[0]
        assert bag.eval_order == ("x", "y", "z")
        assert bag.out_attrs == ()
        assert bag.width == pytest.approx(1.5)
        assert bag.inputs == ["Edge", "Edge", "Edge"]

    def test_describe_mentions_mode_and_topdown(self):
        text = self.triangle_plan().describe()
        assert "early aggregation" in text
        assert "elided" in text
        assert "physical bags" in text

    def test_barbell_plan_marks_reuse(self):
        from repro.graphs import BARBELL_COUNT
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4),
                               (4, 5), (3, 5)])
        db.query(BARBELL_COUNT)
        plan = db._executor.last_plan
        assert len(plan.bags) == 3
        assert any(bag.reused_from_signature for bag in plan.bags)
        assert "[reused identical bag result]" in plan.describe()

    def test_top_down_flag_set_for_spanning_materialization(self):
        db = Database(ordering="identity")
        db.load_graph("Edge", [(0, 1), (1, 2)], undirected=False)
        db.query("Q(x,y) :- Edge(x,z),Edge(z,y).")
        plan = db._executor.last_plan
        if plan.ghd.n_nodes > 1:
            assert plan.used_top_down

    def test_bag_plan_describe(self):
        bag = BagPlan(chi=("x", "y"), eval_order=("x", "y"),
                      out_attrs=("x",), inputs=["R"], width=1.0)
        assert "chi=(x,y)" in bag.describe()
