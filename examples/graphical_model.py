"""Sum-product inference on a graphical model via aggregated joins.

The paper notes its semiring annotations support workloads "outside
traditional data processing, like message passing in graphical models"
(§3.2).  This example computes exact marginals of a chain-structured
Markov random field by expressing variable elimination as one
aggregated join: factors are annotated relations, joining multiplies
potentials, and ``<<SUM(...)>>`` eliminates variables.  The GHD
optimizer automatically picks an elimination-friendly decomposition —
tree decomposition *is* the classic bridge between query plans and
probabilistic inference.

Run with::

    python examples/graphical_model.py
"""

import numpy as np

from repro import Database


def load_factor(db, name, table):
    """Store a potential table (numpy array over variable states) as an
    annotated relation, one tuple per non-zero entry."""
    indexes = np.stack(np.nonzero(table), axis=1).astype(np.uint32)
    db.add_encoded(name, indexes,
                   annotations=table[np.nonzero(table)])


def main():
    rng = np.random.default_rng(0)
    # A 4-variable chain A - B - C - D, three states each.
    phi_ab = rng.random((3, 3)) + 0.1
    phi_bc = rng.random((3, 3)) + 0.1
    phi_cd = rng.random((3, 3)) + 0.1

    db = Database()
    load_factor(db, "AB", phi_ab)
    load_factor(db, "BC", phi_bc)
    load_factor(db, "CD", phi_cd)

    # --- marginal of D: sum over a, b, c of the potential product ---
    marginal = db.query(
        "MD(d;p:float) :- AB(a,b),BC(b,c),CD(c,d); p=<<SUM(a)>>."
    ).to_dict()
    expected = np.einsum("ab,bc,cd->d", phi_ab, phi_bc, phi_cd)
    print("unnormalized marginal of D (engine):",
          [round(marginal[i], 4) for i in range(3)])
    print("unnormalized marginal of D (einsum):",
          np.round(expected, 4))
    assert np.allclose([marginal[i] for i in range(3)], expected)

    # --- partition function: sum everything out ---
    z = db.query("Z(;p:float) :- AB(a,b),BC(b,c),CD(c,d); "
                 "p=<<SUM(a)>>.").scalar
    print("partition function Z:", round(z, 4),
          "| einsum:", round(float(expected.sum()), 4))
    assert np.isclose(z, expected.sum())

    # --- MAP configuration value via the max-product semiring ---
    best = db.query("Best(;p:float) :- AB(a,b),BC(b,c),CD(c,d); "
                    "p=<<MAX(a)>>.").scalar
    brute = max(phi_ab[a, b] * phi_bc[b, c] * phi_cd[c, d]
                for a in range(3) for b in range(3)
                for c in range(3) for d in range(3))
    print("max-product (Viterbi) value:", round(best, 4),
          "| brute force:", round(brute, 4))
    assert np.isclose(best, brute)

    # --- conditioning is just a selection ---
    conditioned = db.query(
        "MDc(d;p:float) :- AB(0,b),BC(b,c),CD(c,d); p=<<SUM(b)>>."
    ).to_dict()
    expected_conditioned = np.einsum("b,bc,cd->d", phi_ab[0], phi_bc,
                                     phi_cd)
    print("marginal of D given A=0:",
          [round(conditioned[i], 4) for i in range(3)])
    assert np.allclose([conditioned[i] for i in range(3)],
                       expected_conditioned)

    print()
    print("the plan (variable elimination chosen by the GHD optimizer):")
    print(db.explain(
        "MD(d;p:float) :- AB(a,b),BC(b,c),CD(c,d); p=<<SUM(a)>>."))


if __name__ == "__main__":
    main()
