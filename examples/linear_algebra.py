"""Linear algebra through the join engine (paper §2.3 / Appendix A.1).

Semiring annotations make aggregated joins compute linear algebra:
annotations multiply when tuples join and SUM folds them when the shared
index is projected away — so ``A(i,j) ⋈ B(j,k)`` with ``<<SUM(j)>>`` is
a sparse matrix-matrix multiply, and PageRank's recursive rule is a
matrix-vector multiply per iteration.

Run with::

    python examples/linear_algebra.py
"""

import numpy as np

from repro import Database


def load_matrix(db, name, matrix):
    """Store a dense numpy matrix as a sparse annotated relation."""
    rows, cols = np.nonzero(matrix)
    data = np.stack([rows, cols], axis=1).astype(np.uint32)
    db.add_encoded(name, data,
                   annotations=matrix[rows, cols].astype(np.float64))


def to_dense(result, shape):
    """Materialize an annotated binary result back into a numpy array."""
    out = np.zeros(shape)
    for (i, j), value in zip(result.relation.data.tolist(),
                             result.annotations):
        out[i, j] = value
    return out


def main():
    rng = np.random.default_rng(0)
    a = np.round(rng.random((4, 5)) * (rng.random((4, 5)) > 0.4), 2)
    b = np.round(rng.random((5, 3)) * (rng.random((5, 3)) > 0.4), 2)

    db = Database()
    load_matrix(db, "A", a)
    load_matrix(db, "B", b)

    # --- matrix-matrix multiply: one rule ---
    product = db.query("C(i,k;v:float) :- A(i,j),B(j,k); v=<<SUM(j)>>.")
    dense = to_dense(product, (4, 3))
    print("A @ B via the join engine:")
    print(dense)
    assert np.allclose(dense, a @ b), "mismatch vs numpy!"
    print("matches numpy:", np.allclose(dense, a @ b))

    # --- matrix-vector multiply ---
    v = np.array([1.0, 0.5, 0.0, 2.0, 1.5])
    db.add_encoded("V", np.nonzero(v)[0].reshape(-1, 1)
                   .astype(np.uint32),
                   annotations=v[np.nonzero(v)])
    matvec = db.query("Y(i;y:float) :- A(i,j),V(j); y=<<SUM(j)>>.")
    y = np.zeros(4)
    for (i,), value in zip(matvec.relation.data.tolist(),
                           matvec.annotations):
        y[i] = value
    print()
    print("A @ v:", y, "| numpy:", a @ v)
    assert np.allclose(y, a @ v)

    # --- tropical semiring: shortest one-hop-composed costs ---
    # MIN over the shared index of annotation products computes the
    # (min, *) closure — e.g. best two-leg route multiplying leg costs.
    best = db.query("D(i,k;c:float) :- A(i,j),B(j,k); c=<<MIN(j)>>.")
    print()
    print("cheapest 2-leg compositions (min-product semiring):",
          best.count, "pairs")


if __name__ == "__main__":
    main()
