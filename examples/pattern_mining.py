"""Pattern mining with GHDs: where decompositions pay off.

Runs the Barbell query (two triangles bridged by an edge) with and
without GHD optimization, showing the paper's §3 story: the single-node
plan does quadratically more work than the Figure 3c decomposition, and
pushed-down selections prune early.

Run with::

    python examples/pattern_mining.py
"""

from repro import Database
from repro.graphs import (BARBELL_COUNT, chung_lu_graph, degrees,
                          selection_barbell_count)


def fresh_db(edges, **overrides):
    db = Database(**overrides)
    db.load_graph("Edge", [tuple(e) for e in edges])
    return db


def main():
    # Deliberately small: the single-node plan we compare against does
    # two orders of magnitude more work than the GHD plan.
    edges = chung_lu_graph(350, 1000, exponent=3.0, seed=1)

    # --- GHD vs single-node plan ---
    ghd_db = fresh_db(edges)
    count = ghd_db.query(BARBELL_COUNT).scalar
    ghd_ops = ghd_db.counter.total_ops

    flat_db = fresh_db(edges, use_ghd=False)
    assert flat_db.query(BARBELL_COUNT).scalar == count
    flat_ops = flat_db.counter.total_ops

    print("barbells: %d" % count)
    print("simulated ops with GHD plan:    %10d" % ghd_ops)
    print("simulated ops single-node plan: %10d  (%.1fx more)"
          % (flat_ops, flat_ops / ghd_ops))

    print()
    print("the chosen plan (paper Figure 3c):")
    print(ghd_db.explain(BARBELL_COUNT))

    # --- selections: find barbells through one specific node ---
    degree = degrees(edges)
    node = int(degree.argmax())
    query = selection_barbell_count(node)
    sel_db = fresh_db(edges)
    through_hub = sel_db.query(query).scalar
    print()
    print("barbells through the top hub (node %d): %d"
          % (node, through_hub))
    print("plan with selections pushed down:")
    print(sel_db.explain(query))


if __name__ == "__main__":
    main()
