"""Recursion: transitive closure and shortest paths over a DAG.

Demonstrates the language's Kleene-star rules (paper §2.3) on a package
dependency graph: which packages transitively depend on which, and how
many hops separate them — naive (union) recursion for reachability and
seminaive MIN recursion for hop counts.

Run with::

    python examples/recursion_reachability.py
"""

from repro import Database

DEPENDENCIES = [
    ("app", "web"), ("app", "auth"),
    ("web", "http"), ("web", "templates"),
    ("auth", "http"), ("auth", "crypto"),
    ("http", "sockets"), ("templates", "parser"),
    ("crypto", "mathlib"), ("sockets", "syscalls"),
]


def main():
    db = Database()
    db.load_graph("DependsOn", DEPENDENCIES, undirected=False)

    # --- reachability via union recursion ---
    closure = db.query("""
        Reaches(x,y) :- DependsOn(x,y).
        Reaches(x,y)* :- DependsOn(x,z),Reaches(z,y).
    """)
    reaches = {}
    for src, dst in closure.tuples():
        reaches.setdefault(src, set()).add(dst)
    print("transitive dependencies:")
    for package in sorted(reaches):
        print("  %-10s -> %s" % (package, ", ".join(sorted(
            reaches[package]))))

    # --- dependency depth via seminaive MIN recursion ---
    depths = db.query("""
        Depth(x;d:int) :- DependsOn('app',x); d=1.
        Depth(x;d:int)* :- DependsOn(w,x),Depth(w); d=<<MIN(w)>>+1.
    """).to_dict()
    print()
    print("hop distance from 'app':")
    for package in sorted(depths, key=depths.get):
        print("  %-10s %d" % (package, int(depths[package])))

    # --- who is affected if 'http' changes? ---
    impacted = sorted(p for p, deps in reaches.items() if "http" in deps)
    print()
    print("packages impacted by a change to 'http':", ", ".join(impacted))


if __name__ == "__main__":
    main()
