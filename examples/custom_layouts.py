"""Working with set layouts directly: the §4 execution-engine story.

Shows the physical layer the engine is built on — the five set layouts,
the adaptive intersection dispatcher, the cost model, and the set-level
layout optimizer (Algorithm 3) — without going through the query
language.

Run with::

    python examples/custom_layouts.py
"""

import numpy as np

from repro.graphs import synthetic_set
from repro.sets import (BitPackedSet, BitSet, BlockedSet, OpCounter,
                        PShortSet, UintSet, VariantSet, build_set,
                        choose_set_layout, intersect)


def show_layout_sizes():
    print("encoded sizes for 4096 dense values (bytes):")
    dense = np.arange(100000, 104096)
    for layout in (UintSet, BitSet, PShortSet, VariantSet, BitPackedSet,
                   BlockedSet):
        print("  %-12s %7d" % (layout.kind, layout(dense).nbytes))


def show_adaptive_dispatch():
    print()
    print("adaptive intersection (Algorithm 2):")
    domain = 1_000_000
    small = UintSet(synthetic_set(64, domain, seed=1))
    for ratio in (4, 64, 1024):
        large = UintSet(synthetic_set(64 * ratio, domain, seed=2))
        counter = OpCounter()
        intersect(small, large, counter)
        chosen = next(iter(counter.by_algorithm))
        print("  ratio %5d:1 -> %-15s (%d simulated ops)"
              % (ratio, chosen, counter.total_ops))


def show_set_optimizer():
    print()
    print("set-level layout optimizer (Algorithm 3):")
    samples = {
        "dense neighborhood (range 512, card 400)":
            np.sort(np.random.default_rng(0).choice(512, 400,
                                                    replace=False)),
        "sparse neighborhood (range 1M, card 400)":
            synthetic_set(400, 1_000_000, seed=3),
    }
    for label, values in samples.items():
        decision = choose_set_layout(values)
        built = build_set(values, "set")
        print("  %-45s -> %s (%d bytes)"
              % (label, decision, built.nbytes))


def show_dense_vs_sparse_economics():
    print()
    print("bitset vs uint economics (simulated ops per intersection):")
    domain = 262_144
    for density in (0.002, 0.05, 0.5):
        values_a = synthetic_set(int(domain * density), domain, seed=4)
        values_b = synthetic_set(int(domain * density), domain, seed=5)
        row = {}
        for layout in (UintSet, BitSet):
            counter = OpCounter()
            intersect(layout(values_a), layout(values_b), counter)
            row[layout.kind] = counter.total_ops
        winner = min(row, key=row.get)
        print("  density %5.1f%%: uint=%8d bitset=%8d -> %s wins"
              % (100 * density, row["uint"], row["bitset"], winner))


if __name__ == "__main__":
    show_layout_sizes()
    show_adaptive_dispatch()
    show_set_optimizer()
    show_dense_vs_sparse_economics()
