"""Quickstart: load a graph, count triangles, inspect the query plan.

Run with::

    python examples/quickstart.py
"""

from repro import Database


def main():
    # A small social graph; node ids can be any hashable values.
    friendships = [
        ("ann", "bob"), ("ann", "cat"), ("bob", "cat"),
        ("cat", "dan"), ("dan", "eve"), ("eve", "ann"),
        ("bob", "dan"), ("cat", "eve"),
    ]

    db = Database()
    # Symmetric filtering (prune=True) keeps one direction per edge, the
    # standard preprocessing for triangle counting.
    db.load_graph("Edge", friendships, prune=True)

    # --- triangle counting: one line of datalog ---
    count = db.query(
        "TriangleCount(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
        "w=<<COUNT(*)>>.").scalar
    print("triangles:", int(count))

    # --- triangle listing, decoded back to the original names ---
    db.load_graph("Edge", friendships)  # undirected, all orientations
    triangles = db.query(
        "Triangle(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).")
    distinct = {tuple(sorted(t)) for t in triangles.tuples()}
    print("triangle sets:", sorted(distinct))

    # --- what plan did the engine run? ---
    print()
    print(db.explain(
        "TriangleCount(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
        "w=<<COUNT(*)>>."))

    # --- how much simulated SIMD work did it cost? ---
    print()
    print("simulated ops so far:", db.counter.snapshot()["total_ops"])


if __name__ == "__main__":
    main()
