"""Social-network analytics: the paper's §5 workloads end to end.

Loads the high-skew Google+ analog, then runs the three workload classes
the paper evaluates — pattern queries, PageRank, SSSP — through the
EmptyHeaded pipeline, reporting what the layout optimizer decided along
the way.

Run with::

    python examples/social_network_analysis.py
"""

from repro import Database
from repro.graphs import (TRIANGLE_COUNT, FOUR_CLIQUE_COUNT, load_dataset,
                          neighborhoods, pagerank, sssp)
from repro.sets import density_skew


def main():
    edges = load_dataset("googleplus")
    print("dataset: google+ analog — %d edges, density skew %.2f"
          % (edges.shape[0], density_skew(neighborhoods(edges))))

    # --- pattern queries on the pruned graph ---
    pruned_db = Database()
    pruned_db.load_graph("Edge", [tuple(e) for e in edges], prune=True)
    print("triangles:", int(pruned_db.query(TRIANGLE_COUNT).scalar))
    print("4-cliques:", int(pruned_db.query(FOUR_CLIQUE_COUNT).scalar))

    # What did the set-level layout optimizer pick?  On skewed graphs a
    # large share of hub neighborhoods become bitsets (§5.2.1).
    histogram = {}
    for trie in pruned_db._trie_cache._tries.values():
        for kind, count in trie.layout_histogram().items():
            histogram[kind] = histogram.get(kind, 0) + count
    print("set layouts chosen:", histogram)

    # --- analytics on the undirected graph ---
    db = Database()
    db.load_graph("Edge", [tuple(e) for e in edges])

    ranks = pagerank(db, iterations=5)
    top = sorted(ranks, key=ranks.get, reverse=True)[:5]
    print("top-5 PageRank nodes:",
          [(node, round(ranks[node], 3)) for node in top])

    hub = top[0]
    distances = sssp(db, hub)
    by_hops = {}
    for node, hops in distances.items():
        by_hops[hops] = by_hops.get(hops, 0) + 1
    print("reach from the top hub (hops -> nodes):",
          dict(sorted(by_hops.items())))


if __name__ == "__main__":
    main()
