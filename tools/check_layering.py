#!/usr/bin/env python
"""Import-layering check for the four-layer query pipeline.

The pipeline's layer boundaries (see ``docs/architecture.md``) are:

  frontend   repro.query    — parse text into ASTs; knows nothing of
                              the optimizer or engine
  optimizer  repro.lir      — logical IR + pass pipeline; may use
                              query/ghd/sets/storage/obs, never engine
  planning + execution
             repro.engine   — physical plans, kernels, caches

This script fails (exit 1) when a forbidden import edge exists:

  * any module under ``repro.lir`` importing ``repro.engine``
  * any module under ``repro.query`` importing ``repro.lir``
    (or ``repro.engine``, which is implied by the same boundary)

Detection is by AST walk, so it sees ``import x``, ``from x import y``,
and relative imports, including those nested inside functions.

Usage: ``python tools/check_layering.py [src_root]``
"""

import ast
import os
import sys

#: lower layer -> modules it must never import (prefix match).
FORBIDDEN = {
    "repro.lir": ("repro.engine",),
    "repro.query": ("repro.lir", "repro.engine"),
}


def module_name(path, src_root):
    """Dotted module name of ``path`` relative to ``src_root``."""
    relative = os.path.relpath(path, src_root)
    parts = relative[:-len(".py")].split(os.sep)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def resolve_relative(module, level, target):
    """Absolute module a ``from ..x import y`` refers to.

    ``level`` is the number of leading dots; ``target`` the module text
    after them (may be empty for ``from . import y``).
    """
    base = module.split(".")
    # Relative imports resolve against the package: for a module file,
    # one dot strips the module name itself.
    base = base[:len(base) - level] if level <= len(base) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


def imported_modules(path, module):
    """Every absolute module name ``module`` (at ``path``) imports."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                found.append(resolve_relative(module, node.level,
                                              node.module or ""))
            elif node.module:
                found.append(node.module)
    return found


def check(src_root):
    """Return a list of violation strings for the tree at ``src_root``."""
    violations = []
    for directory, _, files in os.walk(src_root):
        for filename in sorted(files):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            module = module_name(path, src_root)
            rules = [banned for layer, banned in FORBIDDEN.items()
                     if module == layer or module.startswith(layer + ".")]
            if not rules:
                continue
            banned = tuple(b for group in rules for b in group)
            for imported in imported_modules(path, module):
                for prefix in banned:
                    if imported == prefix \
                            or imported.startswith(prefix + "."):
                        violations.append(
                            "%s imports %s (forbidden: %s may not "
                            "depend on %s)"
                            % (module, imported,
                               module.split(".")[0] + "."
                               + module.split(".")[1], prefix))
    return violations


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    src_root = argv[0] if argv else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    violations = check(src_root)
    if violations:
        print("layering violations:")
        for violation in violations:
            print("  " + violation)
        return 1
    print("layering OK: repro.lir does not import repro.engine; "
          "repro.query does not import repro.lir")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
