"""Table 9: cost of computing each node ordering.

Paper shape: degree/reverse-degree are cheapest (sort by node count),
BFS scales with edges, hybrid ≈ BFS + degree, shingle and strong-runs
cost more than plain degree.  Measured on the Higgs and LiveJournal
analogs, the two datasets the paper's Table 9 uses.
"""

import pytest

from repro.storage import ORDERINGS, order_nodes

from conftest import edges_of, run_or_timeout

DATASETS = ("higgs", "livejournal")
SCHEMES = [s for s in ORDERINGS if s != "identity"]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_ordering_cost(benchmark, dataset, scheme):
    benchmark.group = "table09:" + dataset
    edges = edges_of(dataset)
    n_nodes = int(edges.max()) + 1
    run_or_timeout(benchmark,
                   lambda: order_nodes(edges, n_nodes, scheme=scheme),
                   prewarm=False)
