"""Figure 11: uint algorithms vs density at fixed cardinality.

Both sets hold 2048 values; the range sweeps 10K → 1.2M (density sweeps
high → low).  Paper shape: shuffling-family algorithms lead across most
of the sweep at equal cardinalities; BMiss loses when ranges are small
and output cardinality high (too many prefix collisions) and becomes
competitive when ranges are large and outputs tiny.
"""

import pytest

from repro.graphs import synthetic_set
from repro.sets import OpCounter, UINT_ALGORITHMS, UintSet, intersect

CARDINALITY = 2048
RANGES = (10_000, 60_000, 300_000, 1_200_000)


def pair(value_range):
    a = UintSet(synthetic_set(CARDINALITY, value_range, seed=7))
    b = UintSet(synthetic_set(CARDINALITY, value_range, seed=8))
    return a, b


@pytest.mark.parametrize("value_range", RANGES)
@pytest.mark.parametrize("algorithm", UINT_ALGORITHMS)
def test_algorithms_by_density(benchmark, value_range, algorithm):
    benchmark.group = "fig11:range=%d" % value_range
    a, b = pair(value_range)
    benchmark.extra_info["model_ops"] = model_ops(value_range, algorithm)
    benchmark.pedantic(
        lambda: intersect(a, b, OpCounter(), algorithm=algorithm),
        rounds=3, iterations=1, warmup_rounds=1)


def model_ops(value_range, algorithm):
    a, b = pair(value_range)
    counter = OpCounter()
    intersect(a, b, counter, algorithm=algorithm)
    return counter.total_ops


def test_shape_equal_cardinalities_favor_shuffling():
    for value_range in RANGES:
        assert model_ops(value_range, "shuffling") \
            <= model_ops(value_range, "galloping")


def test_shape_bmiss_pays_for_dense_collisions():
    """BMiss's scalar confirmations grow with output cardinality: it
    must cost more at high density than at low density (per op)."""
    dense = model_ops(10_000, "bmiss")
    sparse = model_ops(1_200_000, "bmiss")
    assert dense > sparse
