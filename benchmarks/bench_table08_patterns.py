"""Table 8: K4 / Lollipop / Barbell with feature ablations.

Columns reproduced per dataset and query:

* EH — the full engine;
* "-R" — no layout optimization (all sets uint);
* "-RA" — additionally no intersection-algorithm adaptivity;
* "-GHD" — single-node GHD plan (omitted for K4, where the single bag
  *is* optimal; expected to blow up or time out on Barbell, as the
  paper reports);
* SociaLite-class (pairwise datalog) and LogicBlox-class engines.
"""

import pytest

from repro.baselines import LogicBloxLike, SociaLiteLike
from repro.graphs import (BARBELL_COUNT, FOUR_CLIQUE_COUNT, LOLLIPOP_COUNT,
                          MICRO_DATASETS)

from conftest import (database_for, pruned_edges_of, run_or_timeout,
                      undirected_edges_of)

QUERIES = {
    "K4": (FOUR_CLIQUE_COUNT, True),     # symmetric: pruned data
    "L31": (LOLLIPOP_COUNT, False),      # undirected data
    "B31": (BARBELL_COUNT, False),
}

ABLATIONS = {
    "full": {},
    "-R": {"layout_level": "uint_only"},
    "-RA": {"layout_level": "uint_only", "adaptive_algorithms": False},
    "-GHD": {"use_ghd": False},
}

CASES = [(d, q) for d in MICRO_DATASETS for q in QUERIES]


@pytest.mark.parametrize("dataset,query_name", CASES)
@pytest.mark.parametrize("ablation", sorted(ABLATIONS))
def test_emptyheaded_variants(benchmark, dataset, query_name, ablation):
    query, pruned = QUERIES[query_name]
    if ablation == "-GHD" and query_name == "K4":
        pytest.skip('single-node GHD is already optimal for K4 '
                    '(the paper marks this "-")')
    benchmark.group = "table08:%s:%s" % (dataset, query_name)
    overrides = ABLATIONS[ablation]
    db = database_for(dataset, prune=pruned,
                      key="t8:" + ablation, **overrides)

    def run():
        db.counter.reset()
        return db.query(query).scalar

    result = run_or_timeout(benchmark, run)
    benchmark.extra_info["count"] = result
    benchmark.extra_info["variant"] = ablation
    benchmark.extra_info["model_ops"] = db.counter.total_ops


PATTERN_ATOMS = {
    "K4": [("x", "y"), ("y", "z"), ("x", "z"), ("x", "u"), ("y", "u"),
           ("z", "u")],
    "L31": [("x", "y"), ("y", "z"), ("x", "z"), ("x", "u")],
    "B31": [("x", "y"), ("y", "z"), ("x", "z"), ("x", "p"), ("p", "q"),
            ("q", "r"), ("p", "r")],
}


@pytest.mark.parametrize("dataset,query_name", CASES)
def test_socialite_like(benchmark, dataset, query_name):
    """Pairwise datalog: the paper reports mostly t/o on these."""
    benchmark.group = "table08:%s:%s" % (dataset, query_name)
    _, pruned = QUERIES[query_name]
    edges = pruned_edges_of(dataset) if pruned \
        else undirected_edges_of(dataset)
    engine = SociaLiteLike()
    from repro.sets import OpCounter
    counter = OpCounter()
    atoms = [("E", vars_) for vars_ in PATTERN_ATOMS[query_name]]
    run_or_timeout(
        benchmark,
        lambda: engine.count_conjunctive(edges, atoms, counter=counter))
    benchmark.extra_info["model_ops"] = counter.total_ops


@pytest.mark.parametrize("dataset,query_name", CASES)
def test_logicblox_like(benchmark, dataset, query_name):
    benchmark.group = "table08:%s:%s" % (dataset, query_name)
    query, pruned = QUERIES[query_name]
    edges = pruned_edges_of(dataset) if pruned \
        else undirected_edges_of(dataset)
    engine = LogicBloxLike()
    engine.load_graph("Edge", [tuple(e) for e in edges],
                      undirected=False)
    run_or_timeout(benchmark, lambda: engine.query(query).scalar)
