"""Table 15: layout-optimizer decision overhead.

Measures the fraction of end-to-end triangle-counting time (trie build +
query) spent inside the layout optimizer's per-set decisions, for the
set-level and block-level optimizers.

Paper shape: single-digit percentages for the set optimizer (1-10%),
roughly 2-3x more for the block optimizer, largest on the smallest
dataset (Patents) where fixed costs loom larger.
"""

import time

import pytest

from repro import Database
from repro.graphs import MICRO_DATASETS, TRIANGLE_COUNT

from conftest import edges_of

LEVELS = ("set", "block")


@pytest.mark.parametrize("dataset", MICRO_DATASETS)
@pytest.mark.parametrize("level", LEVELS)
def test_optimizer_overhead(benchmark, dataset, level):
    benchmark.group = "table15:" + dataset
    edges = [tuple(e) for e in edges_of(dataset)]

    def run():
        db = Database(layout_level=level)
        db.load_graph("Edge", edges, prune=True)
        start = time.perf_counter()
        db.query(TRIANGLE_COUNT)
        elapsed = time.perf_counter() - start
        decision = sum(trie.optimizer.decision_seconds
                       for trie in db._trie_cache._tries.values())
        return decision / elapsed if elapsed else 0.0

    fraction = benchmark.pedantic(run, rounds=1, iterations=1,
                                  warmup_rounds=0)
    benchmark.extra_info["level"] = level
    benchmark.extra_info["overhead_pct"] = round(100 * fraction, 1)
    assert 0.0 <= fraction < 0.9
