"""Table 5: triangle counting — EmptyHeaded vs every engine class.

Paper shape: EmptyHeaded wins on every dataset; the low-level engines
(PowerGraph/CGT-X/Snap-R class) trail by small factors, the high-level
engines by one to three orders of magnitude, with SociaLite timing out
on the largest graph.  Runs on pruned (symmetrically filtered) datasets,
as every engine in the paper does.
"""

import pytest

from repro.baselines import (HashSetGraphEngine, LogicBloxLike,
                             PairwiseEngine, ScalarGraphEngine,
                             SociaLiteLike, TunedGraphEngine)
from repro.graphs import DATASETS, TRIANGLE_COUNT
from repro.sets import OpCounter

from conftest import database_for, pruned_edges_of, run_or_timeout

DATASET_NAMES = sorted(DATASETS)


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_emptyheaded(benchmark, dataset):
    benchmark.group = "table05:" + dataset
    db = database_for(dataset, prune=True, key="eh")

    def run():
        db.counter.reset()
        return db.query(TRIANGLE_COUNT).scalar

    result = run_or_timeout(benchmark, run)
    benchmark.extra_info["triangles"] = result
    benchmark.extra_info["model_ops"] = db.counter.total_ops


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_powergraph_hashset_engine(benchmark, dataset):
    """PowerGraph's strategy (paper App. D.1): hash-set neighborhoods
    above degree 64, probe the smaller side."""
    benchmark.group = "table05:" + dataset
    pruned = pruned_edges_of(dataset)
    engine = HashSetGraphEngine()
    counter = OpCounter()
    run_or_timeout(benchmark,
                   lambda: engine.triangle_count(pruned, counter=counter))
    benchmark.extra_info["model_ops"] = counter.total_ops


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_scalar_graph_engine(benchmark, dataset):
    """Snap-R class (scalar CSR merge intersections)."""
    benchmark.group = "table05:" + dataset
    pruned = pruned_edges_of(dataset)
    engine = ScalarGraphEngine()
    counter = OpCounter()
    run_or_timeout(benchmark,
                   lambda: engine.triangle_count(pruned, counter=counter))
    benchmark.extra_info["model_ops"] = counter.total_ops


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_tuned_graph_engine(benchmark, dataset):
    """Hand-tuned CSR class (vectorized per-node intersections)."""
    benchmark.group = "table05:" + dataset
    pruned = pruned_edges_of(dataset)
    engine = TunedGraphEngine()
    counter = OpCounter()
    run_or_timeout(benchmark,
                   lambda: engine.triangle_count(pruned, counter=counter))
    benchmark.extra_info["model_ops"] = counter.total_ops


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_logicblox_like(benchmark, dataset):
    """Single-bag WCOJ, uint-only, scalar intersections."""
    benchmark.group = "table05:" + dataset
    engine = LogicBloxLike()
    engine.load_graph("Edge", [tuple(e) for e in pruned_edges_of(dataset)],
                      undirected=False)
    run_or_timeout(benchmark, lambda: engine.query(TRIANGLE_COUNT).scalar)
    benchmark.extra_info["model_ops"] = engine.counter.total_ops


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_socialite_like(benchmark, dataset):
    """Datalog over pairwise hash joins (t/o expected on large/skewed
    datasets, as in the paper)."""
    benchmark.group = "table05:" + dataset
    pruned = pruned_edges_of(dataset)
    engine = SociaLiteLike()
    counter = OpCounter()
    run_or_timeout(benchmark,
                   lambda: engine.triangle_count(pruned, counter=counter))
    benchmark.extra_info["model_ops"] = counter.total_ops


@pytest.mark.parametrize("dataset", ["patents", "higgs"])
def test_pairwise_rdbms(benchmark, dataset):
    """PostgreSQL-class pairwise plans — only feasible on the smallest
    datasets (the paper reports them >1000x off and omits them)."""
    benchmark.group = "table05:" + dataset
    pruned = pruned_edges_of(dataset)
    engine = PairwiseEngine()
    counter = OpCounter()
    run_or_timeout(benchmark,
                   lambda: engine.triangle_count(pruned, counter=counter))
    benchmark.extra_info["model_ops"] = counter.total_ops
