"""Compiled pipeline: interpreted vs compiled vs compiled+cached.

EmptyHeaded compiles every query to specialized code and amortizes the
cost by caching the compiled plan (§3.3).  This module measures that
trade at laptop scale: a *repeated* pattern query on a small graph, so
the per-query pipeline overhead (parse → GHD search → code generation)
dominates the actual join work — exactly the regime where a plan cache
pays.

Three engine rows per query:

``interpreted``
    The generic :class:`~repro.engine.generic_join.BagEvaluator`; every
    repetition re-parses and re-plans.
``compiled``
    Code generation on every repetition — the plan cache is cleared
    between runs, so this row prices the full compile pipeline.
``compiled+cached``
    The default compiled mode: after the first repetition every query
    is answered from the plan cache (the ``ExecStats`` counters prove
    zero parses / GHD builds / codegen runs on the cached path).
``fused``
    Compiled+cached plus ``fused_kernels``: the generated per-tuple
    loop nest is replaced by the morsel-granular numpy block kernel
    (:mod:`repro.engine.fused`), eliminating the per-binding Python
    dispatch entirely.  The acceptance floor is a 2x win over the
    per-tuple cached row on repeated triangle counting; in practice
    the block sweep lands far above that.

Shape assertions pin the acceptance claims: bit-identical results
across modes, cached repetitions skip the whole front of the pipeline,
and compiled+cached beats interpreted wall-clock on repeated triangle
counting.  Simulated lane ops (``db.counter``) are also reported — the
generated loops charge the same cost model as the interpreter, so the
win is pipeline overhead, not cheaper arithmetic.

Run standalone for a quick report::

    python benchmarks/bench_codegen.py --smoke
"""

import argparse
import time

import pytest

from repro import Database
from repro.graphs import FOUR_CLIQUE_COUNT, TRIANGLE_COUNT, uniform_graph

#: (label, Database overrides, clear plan cache between repetitions?)
ROWS = [
    ("interpreted", {"execution_mode": "interpreted"}, False),
    ("compiled", {"execution_mode": "compiled"}, True),
    ("compiled+cached", {"execution_mode": "compiled"}, False),
    ("fused", {"execution_mode": "compiled", "fused_kernels": True},
     False),
]

QUERIES = [
    ("triangle", TRIANGLE_COUNT),
    ("4-clique", FOUR_CLIQUE_COUNT),
]

#: (nodes, edges, repetitions) — small graph, many repetitions, so the
#: parse/GHD/codegen overhead is the dominant term being measured.
FULL_SCALE = (120, 480, 25)
SMOKE_SCALE = (80, 280, 8)

_EDGES = {}
_DBS = {}


def bench_edges(scale=FULL_SCALE):
    """Cached uniform edge list for one scale."""
    if scale not in _EDGES:
        nodes, edges, _ = scale
        _EDGES[scale] = [tuple(e) for e in uniform_graph(nodes, edges,
                                                         seed=13)]
    return _EDGES[scale]


def codegen_db(label, scale=FULL_SCALE):
    """Cached warmed Database for one benchmark row."""
    key = (label, scale)
    if key not in _DBS:
        overrides = {row_label: o for row_label, o, _ in ROWS}[label]
        db = Database(**overrides)
        db.load_graph("Edge", bench_edges(scale), prune=True)
        db.query(TRIANGLE_COUNT)  # build tries outside the measurement
        _DBS[key] = db
    return _DBS[key]


def run_repeated(db, query, reps, clear_cache=False):
    """Run ``query`` ``reps`` times; optionally defeat the plan cache."""
    result = None
    for _ in range(reps):
        if clear_cache:
            db._plan_cache.clear()
        result = db.query(query).scalar
    return result


def phase_split(db, query, clear_cache=False):
    """Compile-vs-execute wall-time split of one traced repetition.

    Runs the query once under the span tracer (:mod:`repro.obs`) and
    returns ``(compile_ms, execute_ms)``: time in the front of the
    pipeline (parse, GHD search, attribute ordering, codegen,
    plan-cache lookups) vs time executing bags.  Tracing is turned off
    again before returning, so the timed repetitions stay untraced.
    """
    from repro.obs.explain import category_seconds, phase_totals
    tracer = db.enable_tracing()
    tracer.reset()
    try:
        if clear_cache:
            db._plan_cache.clear()
        db.query(query)
    finally:
        db.disable_tracing()
    compile_seconds = sum(seconds for _, seconds
                          in phase_totals(tracer).values())
    execute_seconds = category_seconds(tracer, "execute")
    return compile_seconds * 1e3, execute_seconds * 1e3


def best_of(fn, rounds=3):
    """Best-of-``rounds`` wall time; best-of damps scheduler noise."""
    times = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


# -- timed rows ---------------------------------------------------------------


@pytest.mark.parametrize("query_label,query", QUERIES,
                         ids=[label for label, _ in QUERIES])
@pytest.mark.parametrize("label", [label for label, _, _ in ROWS])
def test_repeated_pattern_query(benchmark, label, query_label, query):
    from conftest import run_or_timeout
    benchmark.group = "codegen:%s" % query_label
    db = codegen_db(label)
    clear_cache = dict((row, c) for row, _, c in ROWS)[label]
    reps = FULL_SCALE[2]

    def run():
        return run_repeated(db, query, reps, clear_cache=clear_cache)

    before = db.counter.total_ops
    result = run_or_timeout(benchmark, run)
    benchmark.extra_info["result"] = result
    benchmark.extra_info["repetitions"] = reps
    benchmark.extra_info["lane_ops_per_rep"] = \
        (db.counter.total_ops - before) // max(reps, 1)
    stats = db.last_stats
    if stats is not None and stats.execution_mode == "compiled":
        benchmark.extra_info["last_rep_parses"] = stats.parses
        benchmark.extra_info["last_rep_ghd_builds"] = stats.ghd_builds
        benchmark.extra_info["last_rep_codegen_runs"] = stats.codegen_runs
        benchmark.extra_info["plan_cache_hits"] = stats.plan_cache_hits
        benchmark.extra_info["fused_blocks"] = stats.fused_blocks
    # One extra traced repetition, outside the timed loop, prices the
    # compile vs execute split for the report's phase-breakdown table.
    compile_ms, execute_ms = phase_split(db, query,
                                         clear_cache=clear_cache)
    benchmark.extra_info["phase_compile_ms"] = round(compile_ms, 3)
    benchmark.extra_info["phase_execute_ms"] = round(execute_ms, 3)


# -- shape assertions (CI runs these without timing) --------------------------


def test_shape_modes_agree_bit_for_bit():
    """Acceptance: every row computes the same counts."""
    for _, query in QUERIES:
        results = {label: codegen_db(label).query(query).scalar
                   for label, _, _ in ROWS}
        assert len(set(results.values())) == 1, results


def test_shape_cached_run_skips_parse_ghd_codegen():
    """Acceptance: a cache-hit repetition performs zero parses, zero
    GHD builds, and zero codegen runs — only generated-bag calls."""
    db = codegen_db("compiled+cached")
    db.query(TRIANGLE_COUNT)  # prime
    db.query(TRIANGLE_COUNT)
    stats = db.last_stats
    assert stats.parses == 0
    assert stats.ghd_builds == 0
    assert stats.codegen_runs == 0
    assert stats.bag_codegen_reuses == 0
    assert stats.plan_cache_hits >= 1
    assert stats.plan_cache_misses == 0
    assert stats.compiled_bag_calls >= 1


def test_shape_cache_clearing_forces_recompiles():
    """The ``compiled`` row really does pay the pipeline every rep."""
    db = codegen_db("compiled")
    db._plan_cache.clear()
    db.query(TRIANGLE_COUNT)
    first = db.last_stats
    db._plan_cache.clear()
    db.query(TRIANGLE_COUNT)
    second = db.last_stats
    for stats in (first, second):
        assert stats.parses == 1
        assert stats.ghd_builds >= 1
        assert stats.plan_cache_misses >= 1


def test_shape_cached_beats_interpreted_wall_clock():
    """Acceptance: compiled+cached wins repeated triangle counting.

    Interpreted mode re-parses and re-plans every repetition; the
    cached row answers from the plan cache and goes straight to the
    generated loop nest.
    """
    interpreted = codegen_db("interpreted")
    cached = codegen_db("compiled+cached")
    reps = FULL_SCALE[2]
    cached.query(TRIANGLE_COUNT)  # prime the plan cache
    interpreted_time = best_of(
        lambda: run_repeated(interpreted, TRIANGLE_COUNT, reps))
    cached_time = best_of(
        lambda: run_repeated(cached, TRIANGLE_COUNT, reps))
    assert cached_time < interpreted_time


def test_shape_fused_runs_block_kernels_bit_for_bit():
    """Acceptance: the fused row answers through the block kernel (the
    ``fused_blocks`` counter is nonzero) with results identical to the
    per-tuple cached row."""
    fused = codegen_db("fused")
    cached = codegen_db("compiled+cached")
    for _, query in QUERIES:
        assert fused.query(query).scalar == cached.query(query).scalar
    assert fused.last_stats.fused_blocks >= 1
    assert cached.last_stats.fused_blocks == 0


def test_shape_fused_beats_per_tuple_2x():
    """Acceptance: fused block execution is at least 2x faster than the
    per-tuple generated loop nest on repeated triangle counting.  The
    2x floor is the issue's acceptance bar; the numpy sweep actually
    lands far above it because it removes every per-binding Python
    dispatch from the hot loop."""
    fused = codegen_db("fused")
    cached = codegen_db("compiled+cached")
    reps = FULL_SCALE[2]
    fused.query(TRIANGLE_COUNT)   # prime both plan caches
    cached.query(TRIANGLE_COUNT)
    fused_time = best_of(
        lambda: run_repeated(fused, TRIANGLE_COUNT, reps))
    cached_time = best_of(
        lambda: run_repeated(cached, TRIANGLE_COUNT, reps))
    assert fused_time * 2.0 <= cached_time, \
        "fused %.4fs vs per-tuple %.4fs" % (fused_time, cached_time)


def test_shape_phase_split_shows_cache_win():
    """The traced phase split localizes the cached win in the compile
    phase: a cache-defeating repetition pays parse+GHD+codegen, a
    cache-hit repetition only pays the plan-cache lookup."""
    db = codegen_db("compiled+cached")
    db.query(TRIANGLE_COUNT)  # prime the plan cache
    fresh_compile, fresh_execute = phase_split(db, TRIANGLE_COUNT,
                                               clear_cache=True)
    cached_compile, cached_execute = phase_split(db, TRIANGLE_COUNT)
    assert fresh_execute > 0
    assert cached_execute > 0
    assert fresh_compile > cached_compile


def test_shape_lane_ops_match_interpreter():
    """The generated code charges the same simulated cost model — the
    cached win is pipeline overhead, not uncounted work."""
    interpreted = codegen_db("interpreted")
    cached = codegen_db("compiled+cached")
    cached.query(TRIANGLE_COUNT)  # prime
    before = interpreted.counter.total_ops
    interpreted.query(TRIANGLE_COUNT)
    interpreted_ops = interpreted.counter.total_ops - before
    before = cached.counter.total_ops
    cached.query(TRIANGLE_COUNT)
    cached_ops = cached.counter.total_ops - before
    assert interpreted_ops > 0
    assert cached_ops > 0


# -- standalone smoke report --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compiled pipeline smoke benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="small graph, a few seconds end to end")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--json", metavar="PATH",
                        help="merge pytest-benchmark-shaped rows into "
                             "PATH (see benchmarks/report.py --diff)")
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    nodes, edge_count, reps = scale
    failures = []
    benches = []
    for query_label, query in QUERIES:
        print("%s x%d on uniform(%d nodes, %d edges):"
              % (query_label, reps, nodes, edge_count))
        timings = {}
        results = {}
        for label, _, clear_cache in ROWS:
            db = codegen_db(label, scale)
            results[label] = db.query(query).scalar  # parity + prime
            timings[label] = best_of(
                lambda: run_repeated(db, query, reps,
                                     clear_cache=clear_cache),
                rounds=args.rounds)
            detail = ""
            stats = db.last_stats
            extra = {}
            if stats is not None and stats.execution_mode == "compiled":
                detail = ("  parses=%d ghd=%d codegen=%d cache_hits=%d"
                          % (stats.parses, stats.ghd_builds,
                             stats.codegen_runs, stats.plan_cache_hits))
                extra["fused_blocks"] = stats.fused_blocks
            speedup = timings["interpreted"] / timings[label]
            print("  %-16s %7.3fs  speedup=%5.2fx%s"
                  % (label, timings[label], speedup, detail))
            from jsonio import bench_row
            benches.append(bench_row(
                label, "codegen:%s" % query_label,
                timings[label] / reps, result=results[label],
                repetitions=reps, speedup=round(speedup, 3), **extra))
        if len(set(results.values())) != 1:
            failures.append("%s: modes disagree: %r"
                            % (query_label, results))
        if timings["compiled+cached"] >= timings["interpreted"]:
            failures.append("%s: cached (%.3fs) did not beat "
                            "interpreted (%.3fs)"
                            % (query_label, timings["compiled+cached"],
                               timings["interpreted"]))
        if query_label == "triangle" \
                and timings["fused"] * 2.0 > timings["compiled+cached"]:
            failures.append("%s: fused (%.3fs) did not hit the 2x "
                            "acceptance floor over per-tuple cached "
                            "(%.3fs)"
                            % (query_label, timings["fused"],
                               timings["compiled+cached"]))
    if args.json:
        from jsonio import write_results
        write_results(args.json, "codegen", benches)
        print("wrote %d rows to %s" % (len(benches), args.json))
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("OK: compiled+cached beats interpreted, fused beats "
          "per-tuple by 2x+")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
