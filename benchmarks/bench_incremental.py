"""Incremental view maintenance: delta refresh vs full recomputation.

The versioned-mutable storage refactor lets ``Database.append`` feed a
materialized view through the semi-naive delta route
(:mod:`repro.engine.incremental`): the new tuples are substituted into
the view rule one atom position at a time against the full relation,
so refresh cost scales with the *change*, not the database.  This
module prices that claim on the canonical worst case for recomputation
— a triangle-count view, whose full evaluation is a three-way self-join
over the whole edge set — at 0.1%, 1%, and 10% mutation rates.

Rows per rate (identical mutation batches, bit-identical results):

``delta``
    Live database, ``incremental_views=True`` (the default): append the
    batch, read the view; the refresh runs 2^3 - 1 signed delta terms
    over the batch-sized Δ relation.
``rebuild``
    Identical database with ``incremental_views=False``: the same
    append, but the view refreshes by re-running its defining program
    from scratch — the pre-refactor cost model.

Acceptance: ``delta`` beats ``rebuild`` by >= 5x at the 0.1% rate
(the floor the issue sets); the gap shrinks as the rate grows, since
the inclusion–exclusion terms approach full-join size.

Run standalone::

    python benchmarks/bench_incremental.py --smoke
"""

import argparse
import time

import numpy as np
import pytest

from repro import Database

#: Materialized triangle-count view: delta-capable (single rule,
#: COUNT(*)), three Δ positions -> 7 signed terms per refresh.
VIEW = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
        "w=<<COUNT(*)>>.")

#: Mutation rates under test (fraction of the base edge count).
RATES = (0.001, 0.01, 0.10)

#: Acceptance floor: delta vs rebuild at the smallest rate.
FLOOR = 5.0

#: (nodes, edges) for the base graph.
FULL_SCALE = (600, 24000)
SMOKE_SCALE = (300, 7000)

_GRAPHS = {}


def base_graph(scale=FULL_SCALE, seed=11):
    """Deduplicated random directed edge list as an (n, 2) array."""
    if scale not in _GRAPHS:
        nodes, edges = scale
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, nodes, size=(edges * 2, 2),
                           dtype=np.int64)
        raw = raw[raw[:, 0] != raw[:, 1]]
        dedup = np.unique(raw, axis=0)
        _GRAPHS[scale] = dedup[:edges].astype(np.uint32)
    return _GRAPHS[scale]


def mutation_batches(scale, rate, rounds, seed=23):
    """Fresh random edge batches of ``rate * |E|`` rows per round."""
    nodes, edges = scale
    size = max(1, int(edges * rate))
    rng = np.random.default_rng(seed + int(rate * 10000))
    batches = []
    for _ in range(rounds):
        batch = rng.integers(0, nodes, size=(size, 2), dtype=np.int64)
        batch = batch[batch[:, 0] != batch[:, 1]]
        batches.append([tuple(int(v) for v in row) for row in batch])
    return batches


def view_db(scale=FULL_SCALE, incremental=True):
    """Fresh database with the triangle view materialized and warm."""
    db = Database(incremental_views=incremental)
    db.add_relation("Edge", [tuple(int(v) for v in row)
                             for row in base_graph(scale)])
    db.materialize("T", VIEW)
    return db


def refresh_after(db, batch):
    """Append one batch and force the refresh; return the view value."""
    db.append("Edge", batch)
    return db.relation("T").scalar_value


def measure(scale, rate, rounds):
    """Best-of-``rounds`` (delta_seconds, rebuild_seconds, values)."""
    delta_db = view_db(scale, incremental=True)
    rebuild_db = view_db(scale, incremental=False)
    batches = mutation_batches(scale, rate, rounds)
    delta_time = rebuild_time = float("inf")
    values = []
    for batch in batches:
        start = time.perf_counter()
        delta_value = refresh_after(delta_db, batch)
        delta_time = min(delta_time, time.perf_counter() - start)
        start = time.perf_counter()
        rebuild_value = refresh_after(rebuild_db, batch)
        rebuild_time = min(rebuild_time, time.perf_counter() - start)
        values.append((delta_value, rebuild_value))
    return delta_time, rebuild_time, values


# -- timed rows ---------------------------------------------------------------


@pytest.mark.parametrize("rate", RATES, ids=["0.1pct", "1pct", "10pct"])
@pytest.mark.parametrize("label", ["delta", "rebuild"])
def test_view_refresh(benchmark, label, rate):
    from conftest import run_or_timeout
    benchmark.group = "incremental:triangle-view"
    db = view_db(FULL_SCALE, incremental=label == "delta")
    batches = iter(mutation_batches(FULL_SCALE, rate, rounds=64))
    result = run_or_timeout(
        benchmark, lambda: refresh_after(db, next(batches)),
        prewarm=False)
    benchmark.extra_info["rate"] = rate
    benchmark.extra_info["result"] = result


# -- shape assertions ---------------------------------------------------------


def test_shape_delta_matches_rebuild_and_scratch():
    """Acceptance: the delta route, the full-recompute route, and a
    from-scratch database agree at every rate."""
    for rate in RATES:
        delta_db = view_db(SMOKE_SCALE, incremental=True)
        rebuild_db = view_db(SMOKE_SCALE, incremental=False)
        tuples = [tuple(int(v) for v in row)
                  for row in base_graph(SMOKE_SCALE)]
        for batch in mutation_batches(SMOKE_SCALE, rate, rounds=2):
            tuples += batch
            assert refresh_after(delta_db, batch) \
                == refresh_after(rebuild_db, batch)
        scratch = Database()
        scratch.add_relation("Edge", tuples)
        scratch.query(VIEW)
        assert delta_db.relation("T").scalar_value \
            == scratch.relation("T").scalar_value
        assert delta_db.views["T"].delta_refreshes >= 1


def test_shape_rebuild_row_never_takes_delta_route():
    db = view_db(SMOKE_SCALE, incremental=False)
    for batch in mutation_batches(SMOKE_SCALE, 0.01, rounds=2):
        refresh_after(db, batch)
    view = db.views["T"]
    assert view.refreshes >= 2 and view.delta_refreshes == 0


# -- standalone smoke / acceptance gate ---------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="incremental view maintenance benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller graph, a few seconds end to end")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--json", metavar="PATH",
                        help="merge pytest-benchmark-shaped rows into "
                             "PATH (see benchmarks/report.py)")
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    print("base graph: %d nodes, %d edges" % scale)
    benches = []
    failures = []
    speedups = {}
    for rate in RATES:
        delta_time, rebuild_time, values = measure(scale, rate,
                                                   args.rounds)
        if any(d != r for d, r in values):
            failures.append("rate %.3f: delta and rebuild disagree: %r"
                            % (rate, values))
        speedup = rebuild_time / delta_time
        speedups[rate] = speedup
        print("  rate %5.1f%%  delta %8.5fs  rebuild %8.5fs  "
              "speedup %6.2fx"
              % (rate * 100, delta_time, rebuild_time, speedup))
        from jsonio import bench_row
        group = "incremental:triangle-view"
        benches.append(bench_row("delta-%.1fpct" % (rate * 100), group,
                                 delta_time, rate=rate,
                                 result=values[-1][0],
                                 speedup=round(speedup, 3)))
        benches.append(bench_row("rebuild-%.1fpct" % (rate * 100),
                                 group, rebuild_time, rate=rate,
                                 result=values[-1][1], speedup=1.0))
    # The floor holds at both scales because the delta route's fixed
    # per-refresh costs are amortized away: the banded plan memo skips
    # the GHD search per term, and the trie cache patches the mutated
    # dependency's trie surgically instead of rebuilding node-by-node.
    if speedups[RATES[0]] < FLOOR:
        failures.append(
            "delta update %.2fx over full rebuild at %.1f%% rate "
            "(acceptance floor %.1fx)"
            % (speedups[RATES[0]], RATES[0] * 100, FLOOR))
    if args.json:
        from jsonio import write_results
        write_results(args.json, "incremental", benches)
        print("wrote %d rows to %s" % (len(benches), args.json))
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("OK: delta == rebuild at every rate; %.2fx at the %.1f%% "
          "rate (floor %.1fx)"
          % (speedups[RATES[0]], RATES[0] * 100, FLOOR))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
