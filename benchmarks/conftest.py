"""Shared benchmark infrastructure.

Benchmarks mirror the paper's §5 evaluation at laptop scale: every table
and figure has one ``bench_*`` module whose pytest-benchmark groups
reproduce the table's rows.  Engines that exceed :data:`TIMEOUT_SECONDS`
are reported as "t/o", matching the paper's 30-minute convention.

Datasets and databases are cached per session — the paper likewise
excludes loading/index time from all measurements (§5.1.3).
"""

import signal
from contextlib import contextmanager

import pytest

from repro import Database
from repro.graphs import load_dataset, symmetric_filter, undirect

#: Benchmark-scale stand-in for the paper's 30-minute timeout.
TIMEOUT_SECONDS = 20


class Timeout(Exception):
    """Raised when a measured engine exceeds the benchmark budget."""


@contextmanager
def time_limit(seconds=TIMEOUT_SECONDS):
    """SIGALRM-based wall-clock budget for one engine run."""
    def handler(signum, frame):
        raise Timeout()

    previous = signal.signal(signal.SIGALRM, handler)
    signal.alarm(int(seconds))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def run_or_timeout(benchmark, fn, seconds=TIMEOUT_SECONDS, prewarm=True):
    """Benchmark ``fn`` once; skip (as "t/o") if over budget —
    the same semantics as the paper's "t/o" table entries.

    A pre-warming call builds tries/indexes outside the measurement,
    matching the paper's §5.1.3 methodology (index creation excluded).
    """
    try:
        if prewarm:
            with time_limit(seconds):
                fn()
        with time_limit(seconds):
            result = benchmark.pedantic(fn, rounds=1, iterations=1,
                                        warmup_rounds=0)
        return result
    except Timeout:
        pytest.skip("t/o (exceeded %ds budget; the paper reports "
                    "timeouts the same way)" % seconds)


_EDGE_CACHE = {}
_DB_CACHE = {}


def edges_of(name):
    """Cached raw edge array of a Table 3 analog."""
    if name not in _EDGE_CACHE:
        _EDGE_CACHE[name] = load_dataset(name)
    return _EDGE_CACHE[name]


def pruned_edges_of(name):
    """Symmetrically filtered (degree-ordered ids applied by the db)."""
    return symmetric_filter(edges_of(name))


def undirected_edges_of(name):
    return undirect(edges_of(name))


def database_for(name, prune=False, key=None, **overrides):
    """Cached Database with the named dataset loaded.

    ``key`` must distinguish configs; trie/index build time stays out of
    the measurement, matching §5.1.3.
    """
    cache_key = (name, prune, key)
    if cache_key not in _DB_CACHE:
        db = Database(**overrides)
        db.load_graph("Edge", [tuple(e) for e in edges_of(name)],
                      prune=prune)
        _DB_CACHE[cache_key] = db
    return _DB_CACHE[cache_key]


@pytest.fixture(autouse=True)
def _reset_counters():
    """Zero every cached database's op counter between benchmarks."""
    yield
    for db in _DB_CACHE.values():
        db.counter.reset()
