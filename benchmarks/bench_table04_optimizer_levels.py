"""Table 4: layout-optimizer granularity vs the oracle lower bound.

For triangle counting on each micro dataset, measures the simulated-op
cost of the relation-, set-, and block-level optimizers and divides by
the brute-force oracle's per-intersection optimum (paper §4.4).

Paper shape: the set level is closest to the oracle overall (within
1.1x–1.6x); the relation level is worst on the high-skew dataset
(7.3x on Google+); block level sits in between.
"""

import numpy as np
import pytest

from repro.baselines import CSRGraph
from repro.graphs import MICRO_DATASETS, TRIANGLE_COUNT
from repro.sets import oracle_intersection_cost

from conftest import database_for, pruned_edges_of, run_or_timeout

LEVELS = ("relation", "set", "block")


def level_ops(dataset, level):
    db = database_for(dataset, prune=True, key="t4:" + level,
                      layout_level=level)
    db.counter.reset()
    db.query(TRIANGLE_COUNT)
    return db.counter.total_ops


def oracle_ops(dataset):
    """Replay the triangle plan's intersections, pricing each at the
    oracle's optimum over every layout/algorithm combination."""
    pruned = pruned_edges_of(dataset)
    graph = CSRGraph(pruned)
    roots = np.unique(pruned[:, 0]).astype(np.uint32)
    total = 0
    for x in roots.tolist():
        neighborhood_x = graph.neighbors(int(x)).astype(np.uint32)
        cost, _ = oracle_intersection_cost(neighborhood_x, roots)
        total += cost
        candidates = np.intersect1d(neighborhood_x, roots,
                                    assume_unique=True)
        for y in candidates.tolist():
            neighborhood_y = graph.neighbors(int(y)).astype(np.uint32)
            if neighborhood_y.size == 0:
                continue
            cost, _ = oracle_intersection_cost(neighborhood_x,
                                               neighborhood_y)
            total += cost
    return total


_ORACLE_CACHE = {}


@pytest.mark.parametrize("dataset", MICRO_DATASETS)
@pytest.mark.parametrize("level", LEVELS)
def test_optimizer_level_vs_oracle(benchmark, dataset, level):
    benchmark.group = "table04:" + dataset
    if dataset not in _ORACLE_CACHE:
        _ORACLE_CACHE[dataset] = oracle_ops(dataset)
    oracle = _ORACLE_CACHE[dataset]
    db = database_for(dataset, prune=True, key="t4:" + level,
                      layout_level=level)

    def run():
        db.counter.reset()
        db.query(TRIANGLE_COUNT)
        return db.counter.total_ops

    ops = run_or_timeout(benchmark, run)
    ratio = ops / max(oracle, 1)
    benchmark.extra_info["level"] = level
    benchmark.extra_info["ops"] = int(ops)
    benchmark.extra_info["oracle_ops"] = int(oracle)
    benchmark.extra_info["x_oracle"] = round(ratio, 2)
    # The oracle is a true lower bound (Table 4 never shows < 1.0x).
    assert ratio >= 0.99


def test_set_level_wins_overall():
    """The paper's conclusion: set-level is the best default."""
    totals = {level: 0.0 for level in LEVELS}
    for dataset in MICRO_DATASETS:
        for level in LEVELS:
            totals[level] += level_ops(dataset, level)
    assert totals["set"] <= totals["relation"]
    assert totals["set"] <= totals["block"]
