"""Telemetry overhead: the pipeline must be ~free when off, cheap on.

The continuous-telemetry pipeline (:mod:`repro.obs.telemetry`) wraps
every query with a write-ahead journal entry, a structured log record,
and lifetime series updates.  The acceptance bar is that running it
*fully on* — journal, JSONL sink, flight ring, labeled series — costs
at most :data:`OVERHEAD_BUDGET` (2%) of wall time on the codegen smoke
workload (repeated triangle / 4-clique counting, the same regime
``bench_codegen.py`` measures), and that telemetry *off* stays a single
``is None`` test on the hot path.

Three engine rows per run:

``off``
    Compiled+cached execution, no telemetry — the baseline.
``telemetry``
    Memory-only :class:`~repro.obs.telemetry.TelemetryHub` (rings and
    series, no files).
``telemetry+disk``
    The full pipeline: in-flight journal, rotating JSONL query log,
    flight recorder, OpenMetrics file at close.

Wall-clock diffs of whole query loops are noisy (the overhead is
hundreds of microseconds under multi-millisecond queries), so the
acceptance number comes from *in-situ attribution*: the telemetry
wrapper's own time is measured around the inner execution inside real
telemetry-on queries, per query, and summarized by the median (robust
to GC / scheduler spikes).  The ``wrapper-overhead`` JSON row stamps
``speedup = OVERHEAD_BUDGET / measured share`` so the perf-diff gate
(`report.py --diff`) fails loudly if instrumentation cost ever grows
past the budget — a wall-clock speedup ratio would barely move on a
10x instrumentation regression, this ratio goes to 0.2.

Run standalone for a quick report::

    python benchmarks/bench_telemetry.py --smoke
"""

import argparse
import statistics
import tempfile
import time

import pytest

from repro import Database
from repro.graphs import FOUR_CLIQUE_COUNT, TRIANGLE_COUNT, uniform_graph

#: Acceptance bar: telemetry fully on costs at most this share of wall
#: time on the codegen smoke workload.
OVERHEAD_BUDGET = 0.02

ROWS = ["off", "telemetry", "telemetry+disk"]

#: The codegen smoke workload: one repetition = both pattern queries.
QUERIES = [
    ("triangle", TRIANGLE_COUNT),
    ("4-clique", FOUR_CLIQUE_COUNT),
]

#: (nodes, edges, repetitions) — matches bench_codegen.py.
FULL_SCALE = (120, 480, 25)
SMOKE_SCALE = (80, 280, 8)

_EDGES = {}
_DBS = {}


def bench_edges(scale=FULL_SCALE):
    if scale not in _EDGES:
        nodes, edges, _ = scale
        _EDGES[scale] = [tuple(e) for e in uniform_graph(nodes, edges,
                                                         seed=13)]
    return _EDGES[scale]


def telemetry_db(label, scale=FULL_SCALE):
    """Cached warmed Database for one row; tries and plan cache are
    built outside every measurement."""
    key = (label, scale)
    if key not in _DBS:
        db = Database(execution_mode="compiled")
        db.load_graph("Edge", bench_edges(scale), prune=True)
        for _, query in QUERIES:
            db.query(query)
        if label == "telemetry":
            db.enable_telemetry()
        elif label == "telemetry+disk":
            db.enable_telemetry(directory=tempfile.mkdtemp(
                prefix="bench-telemetry-"))
        _DBS[key] = db
    return _DBS[key]


def run_workload(db, reps):
    result = None
    for _ in range(reps):
        for _, query in QUERIES:
            result = db.query(query).scalar
    return result


def best_of(fn, rounds=3):
    times = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def wrapper_overhead(db, samples=60):
    """In-situ telemetry cost share on the codegen smoke workload.

    Runs ``samples`` repetitions of the workload on a telemetry-on
    database with a timing shim around the inner (pre-telemetry)
    execution path, so each query yields one (outer - inner) wrapper
    sample.  Returns ``(share, median_wrapper_seconds,
    mean_inner_seconds)`` where ``share`` is the median wrapper cost
    divided by the mean per-query execution time — medians keep one GC
    pause or scheduler preemption from polluting the estimate.
    """
    assert db.telemetry is not None
    inner_times = []
    wrapper_times = []
    real = db._query_plain

    def shim(text):
        started = time.perf_counter()
        result = real(text)
        inner_times.append(time.perf_counter() - started)
        return result

    db._query_plain = shim
    try:
        for _ in range(samples):
            for _, query in QUERIES:
                started = time.perf_counter()
                db.query(query)
                outer = time.perf_counter() - started
                wrapper_times.append(outer - inner_times[-1])
    finally:
        db._query_plain = real
    median_wrapper = statistics.median(wrapper_times)
    mean_inner = statistics.fmean(inner_times)
    return median_wrapper / mean_inner, median_wrapper, mean_inner


# -- timed rows ---------------------------------------------------------------


@pytest.mark.parametrize("label", ROWS)
def test_workload_with_telemetry(benchmark, label):
    from conftest import run_or_timeout
    benchmark.group = "telemetry:codegen-smoke"
    db = telemetry_db(label)
    reps = FULL_SCALE[2]

    def run():
        return run_workload(db, reps)

    result = run_or_timeout(benchmark, run)
    benchmark.extra_info["result"] = result
    benchmark.extra_info["repetitions"] = reps
    if db.telemetry is not None:
        benchmark.extra_info["queries_logged"] = db.telemetry.queries


# -- shape assertions (CI runs these without timing) --------------------------


def test_shape_off_by_default():
    """No hub unless asked for: ``query`` dispatches on one ``is
    None`` test and never touches telemetry code."""
    db = Database()
    assert db.config.telemetry is None
    assert db.telemetry is None


def test_shape_results_identical_with_telemetry():
    for _, query in QUERIES:
        results = {label: telemetry_db(label).query(query).scalar
                   for label in ROWS}
        assert len(set(results.values())) == 1, results


def test_shape_wrapper_overhead_within_budget():
    """Acceptance: the full pipeline costs <= 2% of wall time on the
    codegen smoke workload (in-situ attribution, median wrapper cost).
    """
    db = telemetry_db("telemetry+disk")
    share, median_wrapper, mean_inner = wrapper_overhead(db)
    assert share <= OVERHEAD_BUDGET, \
        "telemetry wrapper %.0fus on %.2fms queries = %.2f%% (> %.0f%%)" \
        % (median_wrapper * 1e6, mean_inner * 1e3, share * 100,
           OVERHEAD_BUDGET * 100)


def test_shape_artifacts_are_valid():
    """The overhead being measured buys valid artifacts: a schema-clean
    query log and strictly valid OpenMetrics exposition."""
    import os
    from repro.obs.openmetrics import validate_openmetrics
    from repro.obs.telemetry import validate_query_log
    db = telemetry_db("telemetry+disk")
    run_workload(db, 2)
    hub = db.telemetry
    count, problems = validate_query_log(
        os.path.join(hub.directory, "queries.jsonl"))
    assert problems == []
    assert count >= 4
    path = hub.write_openmetrics()
    with open(path) as handle:
        assert validate_openmetrics(handle.read()) == []


# -- standalone smoke report --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="telemetry overhead smoke benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="small graph, a few seconds end to end")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--json", metavar="PATH",
                        help="merge pytest-benchmark-shaped rows into "
                             "PATH (see benchmarks/report.py --diff)")
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    nodes, edge_count, reps = scale
    failures = []
    benches = []
    print("telemetry rows, %d reps of triangle+4-clique on "
          "uniform(%d nodes, %d edges):" % (reps, nodes, edge_count))
    queries_per_rep = len(QUERIES)
    # interleave the rounds across rows (and take the min) so slow
    # drift on the host hits every row equally
    timings = {label: [] for label in ROWS}
    for label in ROWS:
        telemetry_db(label, scale)  # warm outside the measurement
    for _ in range(max(args.rounds, 1)):
        for label in ROWS:
            db = telemetry_db(label, scale)
            started = time.perf_counter()
            run_workload(db, reps)
            timings[label].append(time.perf_counter() - started)
    timings = {label: min(times) for label, times in timings.items()}
    for label in ROWS:
        print("  %-16s %7.3fs  vs off %5.2fx"
              % (label, timings[label],
                 timings["off"] / timings[label]))
        from jsonio import bench_row
        # NOTE: no ``speedup`` on the wall rows — sub-millisecond
        # overhead under multi-millisecond queries makes the wall
        # ratio pure noise; the diff-gate signal lives on the
        # wrapper-overhead row below.
        benches.append(bench_row(
            label, "telemetry:codegen-smoke",
            timings[label] / (reps * queries_per_rep),
            repetitions=reps))
    share, median_wrapper, mean_inner = wrapper_overhead(
        telemetry_db("telemetry+disk", scale))
    print("  wrapper: median %.0fus per query on %.2fms queries "
          "= %.2f%% (budget %.0f%%)"
          % (median_wrapper * 1e6, mean_inner * 1e3, share * 100,
             OVERHEAD_BUDGET * 100))
    from jsonio import bench_row
    benches.append(bench_row(
        "wrapper-overhead", "telemetry:codegen-smoke", median_wrapper,
        overhead_pct=round(share * 100, 3),
        speedup=round(OVERHEAD_BUDGET / max(share, 1e-9), 3)))
    if share > OVERHEAD_BUDGET:
        failures.append("telemetry fully on costs %.2f%% (> %.0f%% "
                        "budget)" % (share * 100, OVERHEAD_BUDGET * 100))
    if args.json:
        from jsonio import write_results
        write_results(args.json, "telemetry", benches)
        print("wrote %d rows to %s" % (len(benches), args.json))
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("OK: telemetry overhead within the %.0f%% budget"
          % (OVERHEAD_BUDGET * 100))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
