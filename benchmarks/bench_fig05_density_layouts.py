"""Figure 5: uint vs bitset intersection time across densities.

Two sets of equal cardinality over a fixed 1M-value range, density swept
from very sparse to dense.  Paper shape: uint wins at low density,
bitset wins past a density crossover (its 256-value-per-op registers
amortize once blocks fill up); the benchmark reports both wall time and
simulated SIMD ops.
"""

import pytest

from repro.graphs import synthetic_set
from repro.sets import BitSet, OpCounter, UintSet, intersect

RANGE = 1_000_000
#: Swept densities (cardinality / range).
DENSITIES = (0.0005, 0.002, 0.008, 0.03, 0.12, 0.5)


def make_pair(density, layout):
    a = synthetic_set(int(RANGE * density), RANGE, seed=1)
    b = synthetic_set(int(RANGE * density), RANGE, seed=2)
    return layout(a), layout(b)


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("layout", [UintSet, BitSet],
                         ids=["uint", "bitset"])
def test_intersection_by_density(benchmark, density, layout):
    benchmark.group = "fig05:density=%g" % density
    set_a, set_b = make_pair(density, layout)
    once = OpCounter()
    intersect(set_a, set_b, once)
    benchmark.extra_info["model_ops"] = once.total_ops
    benchmark.pedantic(lambda: intersect(set_a, set_b, OpCounter()),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_shape_uint_wins_sparse_bitset_wins_dense():
    """The crossover itself, on the op model (deterministic)."""
    def ops(density, layout):
        set_a, set_b = make_pair(density, layout)
        counter = OpCounter()
        intersect(set_a, set_b, counter)
        return counter.total_ops

    assert ops(0.0005, UintSet) < ops(0.0005, BitSet)
    assert ops(0.5, BitSet) < ops(0.5, UintSet)
