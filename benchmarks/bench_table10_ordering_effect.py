"""Table 10: random vs degree ordering, with/without symmetric filtering.

For each micro dataset, triangle counting runs under a random ordering
and under the degree ordering, on default (undirected) and symmetrically
filtered data, with the uint-only layout and with the full set-level
optimizer.

Paper shape: ordering matters little without symmetry filtering (≈1x),
more with it (up to 4.7x on Google+); the set optimizer is the more
robust of the two layouts under bad orderings.
"""

import pytest

from repro.graphs import MICRO_DATASETS, TRIANGLE_COUNT

from conftest import database_for, run_or_timeout

SETTINGS = [
    ("default", False),
    ("filtered", True),
]
LAYOUTS = ("uint_only", "set")
ORDERINGS = ("random", "degree")


@pytest.mark.parametrize("dataset", MICRO_DATASETS)
@pytest.mark.parametrize("setting,prune", SETTINGS)
@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("ordering", ORDERINGS)
def test_ordering_effect(benchmark, dataset, setting, prune, layout,
                         ordering):
    benchmark.group = "table10:%s:%s:%s" % (dataset, setting, layout)
    db = database_for(dataset, prune=prune,
                      key="t10:%s:%s" % (layout, ordering),
                      layout_level=layout, ordering=ordering)
    run_or_timeout(benchmark, lambda: db.query(TRIANGLE_COUNT).scalar)
    benchmark.extra_info["ordering"] = ordering
