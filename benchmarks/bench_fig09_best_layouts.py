"""Figure 9: best layout combination vs density, relative to uint.

For each density over a fixed 1M range, every homogeneous layout pair is
priced; the benchmark reports the winner and its advantage over the best
uint-only algorithm.  Paper shape: uint wins when sparse; bitset pairs
win when dense; the compressed layouts (variant/bitpacked) never win
because of their decode step; pshort occasionally competes in between
but rarely wins on real data.
"""

import pytest

from repro.graphs import synthetic_set
from repro.sets import (BitPackedSet, BitSet, OpCounter, PShortSet,
                        UintSet, VariantSet, intersect)

RANGE = 1_000_000
DENSITIES = (0.001, 0.01, 0.1, 0.5)
LAYOUTS = {"uint": UintSet, "bitset": BitSet, "pshort": PShortSet,
           "variant": VariantSet, "bitpacked": BitPackedSet}


def ops_for(density, layout):
    a = layout(synthetic_set(int(RANGE * density), RANGE, seed=3))
    b = layout(synthetic_set(int(RANGE * density), RANGE, seed=4))
    counter = OpCounter()
    intersect(a, b, counter)
    return counter.total_ops


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_layout_at_density(benchmark, density, layout):
    benchmark.group = "fig09:density=%g" % density
    cls = LAYOUTS[layout]
    a = cls(synthetic_set(int(RANGE * density), RANGE, seed=3))
    b = cls(synthetic_set(int(RANGE * density), RANGE, seed=4))
    benchmark.extra_info["model_ops"] = ops_for(density, cls)
    benchmark.pedantic(lambda: intersect(a, b, OpCounter()),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_shape_winners_by_density():
    sparse = {name: ops_for(0.001, cls) for name, cls in LAYOUTS.items()}
    dense = {name: ops_for(0.5, cls) for name, cls in LAYOUTS.items()}
    assert min(sparse, key=sparse.get) in ("uint", "pshort")
    assert min(dense, key=dense.get) == "bitset"
    # compressed layouts never achieve the best performance (App. C.2.2)
    for table in (sparse, dense):
        best = min(table.values())
        assert table["variant"] > best
        assert table["bitpacked"] > best
