"""Table 11: -S / -R / -SR ablations on triangle counting.

* "-S"  — vectorized (SIMD-analog) kernels replaced by scalar loops;
* "-R"  — all layouts forced to uint (graph level);
* "-SR" — both.

Measured on default (undirected) and symmetrically filtered data.
Paper shape: disabling SIMD costs ~1-2x, layouts cost most on the
high-skew dataset (Google+ up to 7.5x), and the combined ablation
compounds; the impact is larger on unfiltered data.
"""

import pytest

from repro.graphs import MICRO_DATASETS, TRIANGLE_COUNT

from conftest import database_for, run_or_timeout

VARIANTS = {
    "full": {},
    "-S": {"simd": False},
    "-R": {"layout_level": "uint_only"},
    "-SR": {"simd": False, "layout_level": "uint_only"},
}

SETTINGS = [("default", False), ("filtered", True)]


@pytest.mark.parametrize("dataset", MICRO_DATASETS)
@pytest.mark.parametrize("setting,prune", SETTINGS)
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_feature_ablation(benchmark, dataset, setting, prune, variant):
    benchmark.group = "table11:%s:%s" % (dataset, setting)
    db = database_for(dataset, prune=prune, key="t11:" + variant,
                      **VARIANTS[variant])
    run_or_timeout(benchmark, lambda: db.query(TRIANGLE_COUNT).scalar)
    benchmark.extra_info["variant"] = variant
