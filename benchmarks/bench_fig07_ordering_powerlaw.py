"""Figure 7: node-ordering effect vs power-law exponent.

Triangle counting on synthetic power-law graphs with exponents from
~1.6 to 3.0, under random / degree / BFS / hybrid orderings (with
symmetric filtering, where ordering matters most).

Paper shape: degree ordering wins at low exponents (heavy hubs), BFS
wins at high exponents, and the proposed hybrid tracks whichever of the
two is better.
"""

import pytest

from repro import Database
from repro.graphs import TRIANGLE_COUNT, chung_lu_graph

EXPONENTS = (1.6, 2.0, 2.5, 3.0)
ORDERINGS = ("random", "degree", "bfs", "hybrid")

_GRAPHS = {}


def graph_for(exponent):
    if exponent not in _GRAPHS:
        _GRAPHS[exponent] = chung_lu_graph(1200, 6000, exponent,
                                           seed=int(exponent * 10))
    return _GRAPHS[exponent]


@pytest.mark.parametrize("exponent", EXPONENTS)
@pytest.mark.parametrize("ordering", ORDERINGS)
def test_ordering_across_exponents(benchmark, exponent, ordering):
    benchmark.group = "fig07:gamma=%g" % exponent
    edges = [tuple(e) for e in graph_for(exponent)]
    db = Database(ordering=ordering)
    db.load_graph("Edge", edges, prune=True)
    db.query(TRIANGLE_COUNT)  # warm tries outside the measurement
    benchmark.pedantic(lambda: db.query(TRIANGLE_COUNT).scalar,
                       rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["ordering"] = ordering


def test_shape_hybrid_never_far_from_best():
    """The hybrid ordering's defining property, on the op model."""
    from repro.graphs import TRIANGLE_COUNT

    def ops(exponent, ordering):
        db = Database(ordering=ordering)
        db.load_graph("Edge", [tuple(e) for e in graph_for(exponent)],
                      prune=True)
        db.query(TRIANGLE_COUNT)
        return db.counter.total_ops

    for exponent in (1.6, 3.0):
        best = min(ops(exponent, o) for o in ("degree", "bfs"))
        assert ops(exponent, "hybrid") <= 1.5 * best
