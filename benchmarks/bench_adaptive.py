"""Adaptive execution: calibrated dispatch constants vs paper defaults.

The engine's hard-coded dispatch constants come from the paper's 2016
hardware: galloping past a 32:1 cardinality ratio, bitsets below a
256:1 inverse density.  On this substrate (numpy kernels), the real
crossovers sit elsewhere — ``repro tune`` measures them.  This module
prices what that calibration is worth on a deliberately skewed
workload: common-neighbour counting between "probe" nodes (small
adjacency) and "target" nodes whose adjacency is ``SKEW`` times larger.
The skew ratio sits inside the gap between the calibrated and the
hard-coded galloping crossover, so the default engine runs the
shuffling kernel on every one of those intersections where galloping
wins.

Both interpreted rows pin ``layout_level="uint_only"``: dictionary
encoding densifies node ids, so Algorithm 3 would otherwise turn the
adjacency sets into bitsets and the galloping decision under test
would never run.  The rows differ *only* in the dispatch constants.

Rows (all bit-identical results):

``default``
    Interpreted engine, paper constants (shuffles at ``SKEW``:1).
``tuned``
    Same engine with ``adaptive=True`` and a live machine calibration
    (``repro.tune.calibrate``) — the acceptance row: >= 1.3x over
    ``default`` whenever the calibration finds a crossover below the
    workload's skew ratio.
``fused-default`` / ``fused-tuned``
    The fused block kernel with and without the calibrated constants
    (block budget + skew-aware probe sweep).

``--gate`` replays the suite and fails on a >25% tuned-vs-untuned
regression on any row pair — the nightly tuned-replay check.

Run standalone::

    python benchmarks/bench_adaptive.py --smoke
"""

import argparse
import time

import numpy as np
import pytest

from repro import Database

#: Target-adjacency : probe-adjacency cardinality ratio.  Below the
#: hard-coded 32:1 galloping crossover (default engine shuffles),
#: above the calibrated numpy crossover (tuned engine gallops).
SKEW = 24

#: (probe nodes, probe degree, target nodes); target degree is
#: ``probe degree * SKEW`` and the shared leaf population is sized so
#: each skewed intersection still produces common neighbours.
FULL_SCALE = (256, 1024, 4)
SMOKE_SCALE = (128, 512, 4)

#: Common neighbours of every (probe, target) pair: each binding runs
#: one adj(probe) ∩ adj(target) intersection at the skew ratio, so the
#: dispatch decision under test dominates the timing.
SKEW_QUERY = ("T(;w:long) :- Pair(x,y),Edge(y,z),Edge(x,z); "
              "w=<<COUNT(*)>>.")

_GRAPHS = {}
_PROFILE = []


def machine_profile():
    """One live machine calibration, shared by every tuned row."""
    if not _PROFILE:
        from repro.tune.calibrate import calibrate
        _PROFILE.append(calibrate(seed=0, quick=True))
    return _PROFILE[0]


def skewed_graph(scale=FULL_SCALE, seed=7):
    """``(edge_rows, pair_rows)`` as encoded uint32 matrices.

    ``Edge`` is a symmetrized bipartite graph from probes and targets
    into a shared leaf population; ``Pair`` lists every
    (probe, target) combination — the skewed intersections the query
    will run.
    """
    if scale not in _GRAPHS:
        probes, probe_deg, targets = scale
        target_deg = probe_deg * SKEW
        leaves = target_deg * 2
        rng = np.random.default_rng(seed)
        rows = []
        for index in range(probes):
            neighbours = rng.choice(leaves, size=probe_deg, replace=False)
            source = np.full(probe_deg, leaves + index, dtype=np.int64)
            rows.append(np.stack([source, neighbours], axis=1))
        for index in range(targets):
            neighbours = rng.choice(leaves, size=target_deg,
                                    replace=False)
            source = np.full(target_deg, leaves + probes + index,
                             dtype=np.int64)
            rows.append(np.stack([source, neighbours], axis=1))
        edge = np.concatenate(rows)
        edge = np.concatenate([edge, edge[:, ::-1]]).astype(np.uint32)
        probe_ids = np.arange(leaves, leaves + probes)
        target_ids = np.arange(leaves + probes, leaves + probes + targets)
        pair = np.stack([np.repeat(probe_ids, targets),
                         np.tile(target_ids, probes)],
                        axis=1).astype(np.uint32)
        _GRAPHS[scale] = (edge, pair)
    return _GRAPHS[scale]


def adaptive_rows():
    """(label, Database overrides) for every benchmark row."""
    profile = machine_profile()
    return [
        ("default", {"layout_level": "uint_only"}),
        ("tuned", {"layout_level": "uint_only",
                   "adaptive": True, "tuning": profile}),
        ("fused-default", {"execution_mode": "compiled",
                           "fused_kernels": True}),
        ("fused-tuned", {"execution_mode": "compiled",
                         "fused_kernels": True,
                         "adaptive": True, "tuning": profile}),
    ]


def adaptive_db(label, scale=FULL_SCALE):
    """Fresh warmed Database for one row (tries built, plans cached)."""
    overrides = dict(adaptive_rows())[label]
    edge, pair = skewed_graph(scale)
    db = Database(**overrides)
    db.add_encoded("Edge", edge)
    db.add_encoded("Pair", pair)
    db.query(SKEW_QUERY)  # build tries / compile outside the timing
    return db


def best_of(fn, rounds=3):
    times = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def crossover_gap_exists():
    """Whether this machine's calibrated galloping crossover actually
    sits below the workload's skew ratio.  When it does not, tuned and
    default dispatch identically and no speedup exists to measure."""
    crossover = machine_profile().galloping_crossover
    return crossover is not None and crossover < SKEW


# -- timed rows ---------------------------------------------------------------


@pytest.mark.parametrize("label", ["default", "tuned", "fused-default",
                                   "fused-tuned"])
def test_skewed_common_neighbours(benchmark, label):
    from conftest import run_or_timeout
    benchmark.group = "adaptive:common-neighbours"
    db = adaptive_db(label)
    result = run_or_timeout(benchmark, lambda: db.query(SKEW_QUERY).scalar)
    benchmark.extra_info["result"] = result
    benchmark.extra_info["skew"] = SKEW
    benchmark.extra_info["galloping_crossover"] = \
        machine_profile().galloping_crossover


# -- shape assertions ---------------------------------------------------------


def test_shape_rows_agree_bit_for_bit():
    """Acceptance: tuned constants and the fused sweep change dispatch,
    never results."""
    results = {label: adaptive_db(label, SMOKE_SCALE)
               .query(SKEW_QUERY).scalar
               for label, _ in adaptive_rows()}
    assert len(set(results.values())) == 1, results


def test_shape_tuned_beats_default_1_3x():
    """Acceptance: >= 1.3x on the skewed workload with ``--adaptive``
    (skipped when this machine's calibration says there is no gap —
    then tuned and default dispatch identically by design)."""
    if not crossover_gap_exists():
        pytest.skip("calibrated crossover >= workload skew; no gap")
    default = adaptive_db("default")
    tuned = adaptive_db("tuned")
    default_time = tuned_time = float("inf")
    for _ in range(5):  # interleaved so noise lands on both rows
        start = time.perf_counter()
        default.query(SKEW_QUERY)
        default_time = min(default_time, time.perf_counter() - start)
        start = time.perf_counter()
        tuned.query(SKEW_QUERY)
        tuned_time = min(tuned_time, time.perf_counter() - start)
    assert tuned_time * 1.3 <= default_time, \
        "tuned %.4fs vs default %.4fs (%.2fx)" \
        % (tuned_time, default_time, default_time / tuned_time)


# -- standalone smoke / nightly gate ------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="adaptive tuning smoke benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller graph, a few seconds end to end")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--json", metavar="PATH",
                        help="merge pytest-benchmark-shaped rows into "
                             "PATH (see benchmarks/report.py)")
    parser.add_argument("--gate", action="store_true",
                        help="nightly tuned-replay gate: fail on a "
                             ">25%% tuned-vs-untuned regression")
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    profile = machine_profile()
    print("machine calibration: galloping_crossover=%s (workload "
          "skew %d:1)" % (profile.galloping_crossover, SKEW))
    results = {}
    databases = {}
    for label, _ in adaptive_rows():
        databases[label] = adaptive_db(label, scale)
        results[label] = databases[label].query(SKEW_QUERY).scalar
    # Interleave timing rounds across rows so transient system noise
    # lands on every label, not one label's whole measurement window.
    timings = {label: float("inf") for label in databases}
    for _ in range(max(args.rounds, 1)):
        for label, db in databases.items():
            start = time.perf_counter()
            db.query(SKEW_QUERY)
            timings[label] = min(timings[label],
                                 time.perf_counter() - start)
    benches = []
    for label, _ in adaptive_rows():
        speedup = timings["default"] / timings[label]
        print("  %-14s %7.3fs  speedup=%5.2fx"
              % (label, timings[label], speedup))
        from jsonio import bench_row
        benches.append(bench_row(
            label, "adaptive:common-neighbours", timings[label],
            result=results[label], skew=SKEW,
            galloping_crossover=profile.galloping_crossover,
            speedup=round(speedup, 3)))
    failures = []
    if len(set(results.values())) != 1:
        failures.append("rows disagree: %r" % results)
    for tuned, untuned in (("tuned", "default"),
                           ("fused-tuned", "fused-default")):
        if timings[tuned] > timings[untuned] * 1.25:
            failures.append(
                "%s (%.3fs) regressed >25%% vs %s (%.3fs)"
                % (tuned, timings[tuned], untuned, timings[untuned]))
    # The 1.3x acceptance floor only binds at full scale: the smoke
    # graph is small enough that per-query overhead dilutes the kernel
    # gap below the floor even when the dispatch win is real.
    if not args.gate and not args.smoke and crossover_gap_exists():
        if timings["tuned"] * 1.3 > timings["default"]:
            failures.append(
                "tuned (%.3fs) did not hit the 1.3x acceptance floor "
                "over default (%.3fs)"
                % (timings["tuned"], timings["default"]))
    if args.json:
        from jsonio import write_results
        write_results(args.json, "adaptive", benches)
        print("wrote %d rows to %s" % (len(benches), args.json))
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("OK: tuned rows match bit-for-bit and do not regress"
          + ("; tuned beat default by 1.3x+"
             if not args.gate and not args.smoke
             and crossover_gap_exists() else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
