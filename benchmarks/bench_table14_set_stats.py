"""Table 14: cardinality/range profile of neighborhood sets.

The paper reports mean/max cardinality and mean/max range of the sets in
LiveJournal and Twitter to motivate why graph sets are sparse (mean
cardinality tiny relative to mean range) — the regime where the uint
layout dominates and galloping matters.
"""

import pytest

from repro.graphs import neighborhoods
from repro.sets import set_statistics

from conftest import run_or_timeout, undirected_edges_of

DATASETS = ("livejournal", "twitter")


@pytest.mark.parametrize("dataset", DATASETS)
def test_set_statistics(benchmark, dataset):
    benchmark.group = "table14"
    edges = undirected_edges_of(dataset)

    def run():
        return set_statistics(neighborhoods(edges))

    stats = run_or_timeout(benchmark, run, prewarm=False)
    for key, value in stats.items():
        benchmark.extra_info[key] = round(float(value), 1)
    # The paper's qualitative claim: sets are extremely sparse — the
    # mean range dwarfs the mean cardinality by orders of magnitude.
    assert stats["mean_range"] > 20 * stats["mean_cardinality"]
    assert stats["max_range"] >= stats["mean_range"]
