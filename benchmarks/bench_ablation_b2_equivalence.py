"""Appendix B.2 ablation: redundant-bag elimination and top-down elision.

The paper reports a 2x Barbell speedup from recognizing that the two
triangle bags are identical, and ~10% from skipping the top-down pass on
count queries.  This bench measures both switches on the micro datasets.
"""

import pytest

from repro.graphs import BARBELL_COUNT

from conftest import database_for, run_or_timeout

VARIANTS = {
    "full": {},
    "no-bag-reuse": {"eliminate_redundant_bags": False},
    "no-topdown-elision": {"skip_top_down": False},
}


@pytest.mark.parametrize("dataset", ("patents", "higgs", "livejournal"))
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_b2_ablation(benchmark, dataset, variant):
    benchmark.group = "ablation-b2:" + dataset
    db = database_for(dataset, key="b2:" + variant, **VARIANTS[variant])
    run_or_timeout(benchmark, lambda: db.query(BARBELL_COUNT).scalar)
    benchmark.extra_info["variant"] = variant


def test_shape_bag_reuse_saves_ops():
    db_on = database_for("patents", key="b2:full")
    db_on.counter.reset()
    db_on.query(BARBELL_COUNT)
    ops_on = db_on.counter.total_ops
    db_off = database_for("patents", key="b2:no-bag-reuse",
                          eliminate_redundant_bags=False)
    db_off.counter.reset()
    db_off.query(BARBELL_COUNT)
    assert ops_on < 0.8 * db_off.counter.total_ops
