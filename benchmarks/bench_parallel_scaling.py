"""Parallel scaling: skew-aware work stealing vs static partitioning.

The paper runs every benchmark on 48 threads and credits *dynamic load
balancing* for its parallel scalability on power-law graphs (§5.1.2).
This module measures that claim at laptop scale: triangle counting on a
Chung-Lu power-law graph, serial vs 2/4 workers, with the old
``np.array_split`` static partitioner as the straggler baseline.

Reported per row (``extra_info`` / the ``--smoke`` table):

``speedup``
    Wall-clock speedup over the serial engine.
``busy_ratio``
    Max/min per-worker busy seconds from ``Database.last_stats`` — the
    straggler penalty.  Degree-ordered ids put every hub in the static
    partitioner's first chunk, so its ratio explodes while the
    work-stealing queue keeps workers within a small factor.
``morsel_time_ratio``
    Max/min per-morsel wall time — how evenly the degree-based cost
    model sliced the level-0 candidates.

Shape assertions (run in CI without timing) pin the two acceptance
claims: stealing's busy ratio is far below static's, and stealing beats
static on wall-clock.  The second holds on any core count: on a
multi-core host stealing wins through balance; on a single-core host it
wins by refusing to oversubscribe (the static strategy always forks one
process per worker, paying fork + copy-on-write overhead for no
parallelism).

Run standalone for a quick report::

    python benchmarks/bench_parallel_scaling.py --smoke
"""

import argparse
import time

import pytest

from repro import Database
from repro.graphs import TRIANGLE_COUNT, chung_lu_graph

#: (label, Database overrides) — the benchmark's rows.
ROWS = [
    ("serial", {}),
    ("steal-2w", {"parallel_workers": 2, "parallel_threshold": 4}),
    ("steal-4w", {"parallel_workers": 4, "parallel_threshold": 4}),
    ("static-4w", {"parallel_workers": 4, "parallel_threshold": 4,
                   "parallel_strategy": "static"}),
]

#: Full-size skewed input (benchmark + shape tests).
FULL_SCALE = (2000, 24000)
#: CI-smoke input: same shape, a few seconds end to end.
SMOKE_SCALE = (600, 5000)

_EDGES = {}
_DBS = {}


def skewed_edges(scale=FULL_SCALE):
    """Cached Chung-Lu power-law edge list (heavy hubs, long tail)."""
    if scale not in _EDGES:
        nodes, edges = scale
        _EDGES[scale] = [tuple(e) for e in chung_lu_graph(
            nodes, edges, exponent=1.65, seed=3)]
    return _EDGES[scale]


def scaling_db(label, scale=FULL_SCALE):
    """Cached warmed Database for one benchmark row."""
    key = (label, scale)
    if key not in _DBS:
        overrides = dict(ROWS)[label]
        db = Database(**overrides)
        db.load_graph("Edge", skewed_edges(scale), prune=True)
        db.query(TRIANGLE_COUNT)  # build tries outside the measurement
        _DBS[key] = db
    return _DBS[key]


def best_of(fn, rounds=3):
    """Best-of-``rounds`` wall time; best-of damps scheduler noise."""
    times = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


# -- timed rows ---------------------------------------------------------------


@pytest.mark.parametrize("label", [label for label, _ in ROWS])
def test_triangle_scaling(benchmark, label):
    from conftest import run_or_timeout
    benchmark.group = "parallel:scaling"
    db = scaling_db(label)

    def run():
        return db.query(TRIANGLE_COUNT).scalar

    result = run_or_timeout(benchmark, run)
    benchmark.extra_info["triangles"] = result
    stats = db.last_stats
    if stats is not None:
        benchmark.extra_info["mode"] = stats.mode
        benchmark.extra_info["morsels"] = stats.n_morsels
        benchmark.extra_info["steals"] = stats.steals
        benchmark.extra_info["busy_ratio"] = round(stats.busy_ratio(), 2)
        benchmark.extra_info["morsel_time_ratio"] = \
            round(stats.morsel_time_ratio(), 2)


# -- shape assertions (CI runs these without timing) --------------------------


def test_shape_stealing_eliminates_straggler_imbalance():
    """Acceptance: per-morsel timings exist and the steal scheduler's
    max/min worker-busy ratio is far below the static partitioner's."""
    steal = scaling_db("steal-4w")
    static = scaling_db("static-4w")
    steal.query(TRIANGLE_COUNT)
    steal_stats = steal.last_stats
    static.query(TRIANGLE_COUNT)
    static_stats = static.last_stats
    # Per-morsel timings are reported, and stealing slices far finer
    # than static's one-chunk-per-worker split.
    assert steal_stats.n_morsels > static_stats.n_morsels
    assert all(m.seconds >= 0.0 for m in steal_stats.morsels)
    # Degree-ordered ids concentrate the hubs in static's first chunk:
    # its busy ratio explodes while stealing stays near balanced.
    assert steal_stats.busy_ratio() < static_stats.busy_ratio()
    assert static_stats.busy_ratio() >= 2.0 * steal_stats.busy_ratio()


def test_shape_steal_beats_static_wall_clock():
    """Acceptance: 4-worker stealing beats the old static partitioner.

    Multi-core hosts: balance (static serializes on the hub chunk).
    Single-core hosts: the steal scheduler clamps its fork count to the
    CPUs actually available, while static pays 4 forks of copy-on-write
    trie state for zero parallelism.
    """
    steal = scaling_db("steal-4w")
    static = scaling_db("static-4w")
    steal_time = best_of(lambda: steal.query(TRIANGLE_COUNT))
    static_time = best_of(lambda: static.query(TRIANGLE_COUNT))
    assert steal_time < static_time


# -- standalone smoke report --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="parallel scaling smoke benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="small graph, a few seconds end to end")
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    nodes, edge_count = scale
    print("triangle counting, chung_lu(%d nodes, %d edges, 1.65):"
          % (nodes, edge_count))
    timings = {}
    for label, _ in ROWS:
        db = scaling_db(label, scale)
        timings[label] = best_of(lambda: db.query(TRIANGLE_COUNT),
                                 rounds=args.rounds)
        stats = db.last_stats
        detail = ""
        if stats is not None:
            detail = ("  mode=%-7s morsels=%3d steals=%2d "
                      "busy_ratio=%6.2f morsel_time_ratio=%6.2f"
                      % (stats.mode, stats.n_morsels, stats.steals,
                         stats.busy_ratio(), stats.morsel_time_ratio()))
        print("  %-10s %7.3fs  speedup=%.2fx%s"
              % (label, timings[label],
                 timings["serial"] / timings[label], detail))
    steal_db = scaling_db("steal-4w", scale)
    static_db = scaling_db("static-4w", scale)
    steal_db.query(TRIANGLE_COUNT)
    static_db.query(TRIANGLE_COUNT)
    balanced = steal_db.last_stats.busy_ratio() \
        < static_db.last_stats.busy_ratio()
    faster = timings["steal-4w"] < timings["static-4w"]
    print("steal vs static: %.2fx wall, busy ratio %.2f vs %.2f"
          % (timings["static-4w"] / timings["steal-4w"],
             steal_db.last_stats.busy_ratio(),
             static_db.last_stats.busy_ratio()))
    if not (balanced and faster):
        print("FAIL: work stealing did not beat static partitioning")
        return 1
    print("OK: stealing beats static on wall-clock and balance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
