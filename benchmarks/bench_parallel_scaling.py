"""Parallel scaling: skew-aware work stealing vs static partitioning.

The paper runs every benchmark on 48 threads and credits *dynamic load
balancing* for its parallel scalability on power-law graphs (§5.1.2).
This module measures that claim at laptop scale: triangle counting on a
Chung-Lu power-law graph, serial vs 2/4 workers, with the old
``np.array_split`` static partitioner as the straggler baseline.

Reported per row (``extra_info`` / the ``--smoke`` table):

``speedup``
    Wall-clock speedup over the serial engine.
``busy_ratio``
    Max/min per-worker busy seconds from ``Database.last_stats`` — the
    straggler penalty.  Degree-ordered ids put every hub in the static
    partitioner's first chunk, so its ratio explodes while the
    work-stealing queue keeps workers within a small factor.
``morsel_time_ratio``
    Max/min per-morsel wall time — how evenly the degree-based cost
    model sliced the level-0 candidates.

Two fused rows price the per-morsel dispatch elimination on the same
schedule: ``fused-4w`` routes every morsel through the numpy block
kernel (:mod:`repro.engine.fused`) instead of the per-tuple loop nest,
and ``fused-shared-4w`` additionally serves the trie arrays from the
database's shared-memory arena (``shared_tries``), so forked workers
map them zero-copy instead of paying copy-on-write churn.

Shape assertions (run in CI without timing) pin the acceptance claims:
stealing's busy ratio is far below static's, stealing beats static on
wall-clock, and fused+shared beats the per-tuple steal row by at least
2x.  The steal-vs-static claim holds on any core count: on a
multi-core host stealing wins through balance; on a single-core host it
wins by refusing to oversubscribe (the static strategy always forks one
process per worker, paying fork + copy-on-write overhead for no
parallelism).  The fused 2x floor likewise holds single-core — it is a
dispatch-elimination win, not a scaling win.

Run standalone for a quick report::

    python benchmarks/bench_parallel_scaling.py --smoke
"""

import argparse
import time

import pytest

from repro import Database
from repro.graphs import TRIANGLE_COUNT, chung_lu_graph

#: (label, Database overrides) — the benchmark's rows.
ROWS = [
    ("serial", {}),
    ("steal-2w", {"parallel_workers": 2, "parallel_threshold": 4}),
    ("steal-4w", {"parallel_workers": 4, "parallel_threshold": 4}),
    ("static-4w", {"parallel_workers": 4, "parallel_threshold": 4,
                   "parallel_strategy": "static"}),
    ("fused-4w", {"parallel_workers": 4, "parallel_threshold": 4,
                  "execution_mode": "compiled", "fused_kernels": True}),
    ("fused-shared-4w", {"parallel_workers": 4, "parallel_threshold": 4,
                         "execution_mode": "compiled",
                         "fused_kernels": True, "shared_tries": True}),
]

#: Full-size skewed input (benchmark + shape tests).
FULL_SCALE = (2000, 24000)
#: CI-smoke input: same shape, a few seconds end to end.
SMOKE_SCALE = (600, 5000)

_EDGES = {}
_DBS = {}


def skewed_edges(scale=FULL_SCALE):
    """Cached Chung-Lu power-law edge list (heavy hubs, long tail)."""
    if scale not in _EDGES:
        nodes, edges = scale
        _EDGES[scale] = [tuple(e) for e in chung_lu_graph(
            nodes, edges, exponent=1.65, seed=3)]
    return _EDGES[scale]


def scaling_db(label, scale=FULL_SCALE):
    """Cached warmed Database for one benchmark row."""
    key = (label, scale)
    if key not in _DBS:
        overrides = dict(ROWS)[label]
        db = Database(**overrides)
        db.load_graph("Edge", skewed_edges(scale), prune=True)
        db.query(TRIANGLE_COUNT)  # build tries outside the measurement
        _DBS[key] = db
    return _DBS[key]


def best_of(fn, rounds=3):
    """Best-of-``rounds`` wall time; best-of damps scheduler noise."""
    times = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


# -- timed rows ---------------------------------------------------------------


@pytest.mark.parametrize("label", [label for label, _ in ROWS])
def test_triangle_scaling(benchmark, label):
    from conftest import run_or_timeout
    benchmark.group = "parallel:scaling"
    db = scaling_db(label)

    def run():
        return db.query(TRIANGLE_COUNT).scalar

    result = run_or_timeout(benchmark, run)
    benchmark.extra_info["triangles"] = result
    stats = db.last_stats
    if stats is not None:
        benchmark.extra_info["mode"] = stats.mode
        benchmark.extra_info["morsels"] = stats.n_morsels
        benchmark.extra_info["steals"] = stats.steals
        benchmark.extra_info["busy_ratio"] = round(stats.busy_ratio(), 2)
        benchmark.extra_info["morsel_time_ratio"] = \
            round(stats.morsel_time_ratio(), 2)
        benchmark.extra_info["fused_blocks"] = stats.fused_blocks
        benchmark.extra_info["shm_bytes_mapped"] = stats.shm_bytes_mapped


# -- shape assertions (CI runs these without timing) --------------------------


def test_shape_stealing_eliminates_straggler_imbalance():
    """Acceptance: per-morsel timings exist and the steal scheduler's
    max/min worker-busy ratio is far below the static partitioner's."""
    steal = scaling_db("steal-4w")
    static = scaling_db("static-4w")
    steal.query(TRIANGLE_COUNT)
    steal_stats = steal.last_stats
    static.query(TRIANGLE_COUNT)
    static_stats = static.last_stats
    # Per-morsel timings are reported, and stealing slices far finer
    # than static's one-chunk-per-worker split.
    assert steal_stats.n_morsels > static_stats.n_morsels
    assert all(m.seconds >= 0.0 for m in steal_stats.morsels)
    # Degree-ordered ids concentrate the hubs in static's first chunk:
    # its busy ratio explodes while stealing stays near balanced.
    assert steal_stats.busy_ratio() < static_stats.busy_ratio()
    assert static_stats.busy_ratio() >= 2.0 * steal_stats.busy_ratio()


def test_shape_steal_beats_static_wall_clock():
    """Acceptance: 4-worker stealing beats the old static partitioner.

    Multi-core hosts: balance (static serializes on the hub chunk).
    Single-core hosts: the steal scheduler clamps its fork count to the
    CPUs actually available, while static pays 4 forks of copy-on-write
    trie state for zero parallelism.
    """
    steal = scaling_db("steal-4w")
    static = scaling_db("static-4w")
    steal_time = best_of(lambda: steal.query(TRIANGLE_COUNT))
    static_time = best_of(lambda: static.query(TRIANGLE_COUNT))
    assert steal_time < static_time


# -- fused shape assertions ---------------------------------------------------


def test_shape_fused_shared_maps_arena_and_matches():
    """Acceptance: the fused+shared row answers through block kernels
    served from the shared-memory arena, bit-identically to the
    per-tuple steal row."""
    baseline = scaling_db("steal-4w")
    fused = scaling_db("fused-shared-4w")
    expected = baseline.query(TRIANGLE_COUNT).scalar
    assert fused.query(TRIANGLE_COUNT).scalar == expected
    stats = fused.last_stats
    assert stats.fused_blocks >= 1
    assert stats.shm_bytes_mapped > 0
    assert fused.arena is not None and not fused.arena.closed


def test_shape_fused_shared_beats_per_tuple_2x():
    """Acceptance: fused block kernels over shared tries beat the
    per-tuple steal scheduler by at least 2x wall-clock on the same
    morsel schedule.  This is a dispatch-elimination win, so it holds
    on single-core hosts where the steal scheduler clamps to inline
    execution."""
    steal = scaling_db("steal-4w")
    fused = scaling_db("fused-shared-4w")
    steal_time = best_of(lambda: steal.query(TRIANGLE_COUNT))
    fused_time = best_of(lambda: fused.query(TRIANGLE_COUNT))
    assert fused_time * 2.0 <= steal_time, \
        "fused+shared %.4fs vs per-tuple steal %.4fs" \
        % (fused_time, steal_time)


# -- standalone smoke report --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="parallel scaling smoke benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="small graph, a few seconds end to end")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--json", metavar="PATH",
                        help="merge pytest-benchmark-shaped rows into "
                             "PATH (see benchmarks/report.py --diff)")
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    nodes, edge_count = scale
    print("triangle counting, chung_lu(%d nodes, %d edges, 1.65):"
          % (nodes, edge_count))
    timings = {}
    benches = []
    for label, _ in ROWS:
        db = scaling_db(label, scale)
        result = db.query(TRIANGLE_COUNT).scalar  # prime + parity
        timings[label] = best_of(lambda: db.query(TRIANGLE_COUNT),
                                 rounds=args.rounds)
        stats = db.last_stats
        detail = ""
        extra = {}
        if stats is not None:
            detail = ("  mode=%-7s morsels=%3d steals=%2d "
                      "busy_ratio=%6.2f morsel_time_ratio=%6.2f"
                      % (stats.mode, stats.n_morsels, stats.steals,
                         stats.busy_ratio(), stats.morsel_time_ratio()))
            extra = {"mode": stats.mode, "morsels": stats.n_morsels,
                     "busy_ratio": round(stats.busy_ratio(), 2),
                     "fused_blocks": stats.fused_blocks,
                     "shm_bytes_mapped": stats.shm_bytes_mapped}
        speedup = timings["serial"] / timings[label]
        print("  %-15s %7.3fs  speedup=%.2fx%s"
              % (label, timings[label], speedup, detail))
        from jsonio import bench_row
        benches.append(bench_row(
            label, "parallel:scaling", timings[label],
            triangles=result, speedup=round(speedup, 3), **extra))
    steal_db = scaling_db("steal-4w", scale)
    static_db = scaling_db("static-4w", scale)
    steal_db.query(TRIANGLE_COUNT)
    static_db.query(TRIANGLE_COUNT)
    balanced = steal_db.last_stats.busy_ratio() \
        < static_db.last_stats.busy_ratio()
    faster = timings["steal-4w"] < timings["static-4w"]
    print("steal vs static: %.2fx wall, busy ratio %.2f vs %.2f"
          % (timings["static-4w"] / timings["steal-4w"],
             steal_db.last_stats.busy_ratio(),
             static_db.last_stats.busy_ratio()))
    print("fused+shared vs per-tuple steal: %.2fx wall"
          % (timings["steal-4w"] / timings["fused-shared-4w"]))
    if args.json:
        from jsonio import write_results
        write_results(args.json, "parallel", benches)
        print("wrote %d rows to %s" % (len(benches), args.json))
    failed = []
    if not (balanced and faster):
        failed.append("work stealing did not beat static partitioning")
    if timings["fused-shared-4w"] * 2.0 > timings["steal-4w"]:
        failed.append("fused+shared did not hit the 2x acceptance "
                      "floor over per-tuple steal")
    if failed:
        for failure in failed:
            print("FAIL: %s" % failure)
        return 1
    print("OK: stealing beats static; fused+shared beats per-tuple "
          "by 2x+")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
