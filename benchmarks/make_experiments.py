"""Produce the full EXPERIMENTS.md from a benchmark JSON run.

Usage::

    python benchmarks/make_experiments.py bench_results.json > EXPERIMENTS.md

Prepends the methodology narrative to the per-experiment measured
tables rendered by :mod:`report`.
"""

import sys

from report import load, render

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation of
*EmptyHeaded: A Relational Engine for Graph Processing* (SIGMOD 2016),
measured by `pytest benchmarks/ --benchmark-only` on the synthetic
Table 3 analogs (`repro.graphs.datasets`).  Regenerate with::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench_results.json
    python benchmarks/make_experiments.py bench_results.json > EXPERIMENTS.md

## How to read these numbers

**We reproduce shapes, not absolute times.**  The paper measured a C++
code generator with AVX SIMD on a 48-core Xeon against native
competitors on billion-edge graphs; this reproduction is pure Python on
scaled-down synthetic graphs.  Two metrics appear in every table:

* **wall (ms)** — actual elapsed time in this Python process;
* **model_ops** — simulated hardware operations: every intersection
  kernel and every baseline engine charges the operations *its
  algorithm* performs, priced at the paper's lane widths (4×32-bit
  compares per SSE op, one 256-bit AVX AND per bitset block, one scalar
  op per merge step / hash probe / pairwise-join tuple).

For comparisons *within* the engine (ablations, layout levels, node
orderings, density/cardinality sweeps) both metrics tell the same
story.  For comparisons *across* engines, `model_ops` is primary: a
flat hand-written Python loop enjoys far smaller interpreter constants
than a layered engine, an artifact that would not survive compilation —
the op counts isolate the algorithmic effects (plan shape, layouts,
min-property intersections) that the paper attributes its results to.
Wall clock still reproduces every *asymptotic* separation: engines the
paper reports as "t/o" time out here too (20 s budget standing in for
the paper's 30 minutes), and the pairwise engines blow up quadratically
on exactly the instances theory says they must.

Timeouts appear as *skipped* benchmarks ("t/o"), matching the paper's
table convention.  `rel` is each row's slowdown relative to the
group's fastest row (wall clock).

## Headline checks (deterministic shape assertions)

These are enforced by ``test_shape_*``/claims tests in the repository
(run under plain ``pytest``), independent of timing noise:

| Paper claim | Where verified |
|---|---|
| Triangle work within the AGM bound (~N^1.5 on worst-case instances); pairwise plans Θ(N²) on star instances; gap grows with √N | `benchmarks/bench_asymptotics_worst_case.py`, `tests/test_paper_claims.py` |
| Barbell: GHD plan asymptotically beats the single-node plan (Fig 3c vs 3b); the "-GHD" plan times out on the real analogs | `tests/test_paper_claims.py`, table08 below |
| Set-level layout optimizer within small factor of the oracle; relation level worst on high skew (paper: 7.3x on Google+) | table04 below |
| Galloping overtakes shuffling past the 32:1 cardinality ratio | `bench_fig10`, `tests/sets/test_cost_model.py` |
| Bitset wins dense / uint wins sparse, with a density crossover | `bench_fig05`, `tests/sets/test_cost_model.py` |
| Block-composite beats homogeneous layouts on internal density skew | `bench_fig06` |
| Compressed layouts (variant/bitpacked) never win an intersection | `bench_fig09` |
| Symmetric filtering: 6x output reduction, less total work | `tests/test_paper_claims.py` |
| B.2 bag reuse ≈2x on Barbell | `bench_ablation_b2_equivalence.py` |

## Known divergences from the paper

* **Wall-clock cross-engine order on pattern queries at small scale.**
  On triangle/K4-style queries the lean CSR baselines beat
  EmptyHeaded's wall clock despite doing more algorithmic work —
  interpreter constants, as discussed above.  On PageRank and SSSP the
  engine's vectorized two-level fast path (the generated-inner-loop
  analog) restores the paper's band: SSSP lands within the paper's own
  "at most 3x off Galois", and PageRank sits between the tuned and
  per-vertex scalar engines.
* **LogicBlox-class gaps are smaller than three orders of magnitude.**
  The paper's LogicBlox figures include a full commercial system's
  overheads (transactions, pure scalar leapfrog at native speed); our
  stand-in shares this reproduction's numpy substrate except where the
  ablations remove it, so the measured gap is the *algorithmic* share
  (single-bag plans + no layouts + scalar kernels), typically 1–2
  orders of magnitude on the op metric.
* **Absolute density-skew values.**  Pearson-first skew on small
  synthetic graphs doesn't match Table 3's absolute values, but the
  ordering (Google+ ≫ Higgs/Twitter > LiveJournal/Orkut/Patents) does.

## Measured results

"""


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    sys.stdout.write(HEADER)
    sys.stdout.write(render(load(argv[1])))
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
