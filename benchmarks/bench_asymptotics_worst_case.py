"""Worst-case optimality sweep (paper §1 and §2.1, Example 2.1).

Two instance families separate the three §1 claims:

* **Complete graphs K_n** — the AGM worst case.  The engine's uint-only
  ("-R") op count grows as ~N^{3/2} with the edge count, matching the
  AGM bound; the full engine grows *slower* because its bitset layouts
  cover dense neighborhoods with 256-wide registers — the paper's
  "SIMD layouts give large constant-factor wins on top of optimality".
* **Star graphs** — the classic pairwise-killer: a hub with k spokes
  has k² wedges and zero triangles, so any pairwise plan does Θ(N²)
  work while a worst-case optimal plan does ~N.
"""

import math

import numpy as np
import pytest

from repro import Database
from repro.baselines import PairwiseEngine
from repro.graphs import TRIANGLE_COUNT, complete_graph, undirect
from repro.sets import OpCounter

COMPLETE_SIZES = (12, 17, 24, 34)
STAR_SIZES = (64, 128, 256, 512)


def star_graph(spokes):
    return np.stack([np.zeros(spokes, dtype=np.int64),
                     np.arange(1, spokes + 1)], axis=1)


def eh_ops(edges, **overrides):
    db = Database(**overrides)
    db.load_graph("Edge", [tuple(e) for e in edges], prune=True)
    db.query(TRIANGLE_COUNT)
    return edges.shape[0], db.counter.total_ops


def pairwise_ops(edges):
    engine = PairwiseEngine()
    counter = OpCounter()
    engine.triangle_count(edges, counter=counter)
    return edges.shape[0], counter.total_ops


def fitted_exponent(points):
    logs = [(math.log(n), math.log(max(ops, 1))) for n, ops in points]
    xs, ys = zip(*logs)
    return float(np.polyfit(xs, ys, 1)[0])


@pytest.mark.parametrize("n", COMPLETE_SIZES)
def test_emptyheaded_complete_graphs(benchmark, n):
    benchmark.group = "asymptotics:complete:K%d" % n
    edges = undirect(complete_graph(n))
    db = Database()
    db.load_graph("Edge", [tuple(e) for e in edges], prune=True)
    db.query(TRIANGLE_COUNT)  # warm tries
    db.counter.reset()
    benchmark.pedantic(lambda: db.query(TRIANGLE_COUNT).scalar,
                       rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["edges"] = int(edges.shape[0])
    benchmark.extra_info["model_ops"] = db.counter.total_ops


@pytest.mark.parametrize("spokes", STAR_SIZES)
def test_pairwise_star_graphs(benchmark, spokes):
    benchmark.group = "asymptotics:star:%d" % spokes
    edges = undirect(star_graph(spokes))
    engine = PairwiseEngine()
    counter = OpCounter()
    benchmark.pedantic(
        lambda: engine.triangle_count(edges, counter=counter),
        rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["edges"] = int(edges.shape[0])
    benchmark.extra_info["model_ops"] = counter.total_ops


class TestShape:
    def test_uint_engine_tracks_the_agm_exponent(self):
        points = [eh_ops(undirect(complete_graph(n)),
                         layout_level="uint_only")
                  for n in COMPLETE_SIZES]
        exponent = fitted_exponent(points)
        assert 1.2 < exponent < 1.75, exponent

    def test_full_engine_beats_uint_on_dense_worst_case(self):
        """Bitset layouts cut op counts below uint on dense data — the
        constant-factor SIMD win stacked on worst-case optimality."""
        for n in (17, 34):
            edges = undirect(complete_graph(n))
            _, full = eh_ops(edges)
            _, uint = eh_ops(edges, layout_level="uint_only")
            assert full < uint

    def test_pairwise_is_quadratic_on_stars(self):
        points = [pairwise_ops(undirect(star_graph(k)))
                  for k in STAR_SIZES]
        exponent = fitted_exponent(points)
        assert exponent > 1.85, exponent

    def test_wcoj_is_near_linear_on_stars(self):
        points = [eh_ops(undirect(star_graph(k))) for k in STAR_SIZES]
        exponent = fitted_exponent(points)
        assert exponent < 1.3, exponent

    def test_gap_widens_with_scale(self):
        """The √N separation: the pairwise/WCOJ op ratio must grow."""
        ratios = []
        for k in (64, 512):
            edges = undirect(star_graph(k))
            _, wcoj = eh_ops(edges)
            _, pairwise = pairwise_ops(edges)
            ratios.append(pairwise / max(wcoj, 1))
        assert ratios[1] > 3 * ratios[0]