"""Appendix C.1: encoded sizes and decode costs of the set layouts.

The paper's Appendix C introduces pshort/variant/bitpacked as
*compression* layouts: they shrink clustered data well but pay a decode
on every intersection (which is why they never win in Figure 9).  This
bench measures both halves on real neighborhood data: bytes per layout
across each dataset's adjacency sets, plus encode/decode round-trip
time for the compressed layouts.
"""

import pytest

from repro.graphs import MICRO_DATASETS, neighborhoods
from repro.sets import (BitPackedSet, BitSet, BlockedSet, PShortSet,
                        UintSet, VariantSet)

from conftest import undirected_edges_of

LAYOUTS = {"uint": UintSet, "bitset": BitSet, "pshort": PShortSet,
           "variant": VariantSet, "bitpacked": BitPackedSet,
           "block": BlockedSet}


def dataset_neighborhoods(dataset):
    return [hood for hood in neighborhoods(undirected_edges_of(dataset))
            if hood.size]


@pytest.mark.parametrize("dataset", ("googleplus", "patents"))
@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_encoded_size(benchmark, dataset, layout):
    """Total encoded bytes over every neighborhood set; timing covers
    the encode pass."""
    benchmark.group = "appendixC:size:%s" % dataset
    hoods = dataset_neighborhoods(dataset)
    cls = LAYOUTS[layout]

    def encode_all():
        return sum(cls(hood).nbytes for hood in hoods)

    total = benchmark.pedantic(encode_all, rounds=1, iterations=1,
                               warmup_rounds=0)
    benchmark.extra_info["total_bytes"] = int(total)
    benchmark.extra_info["bytes_per_value"] = round(
        total / sum(h.size for h in hoods), 2)


@pytest.mark.parametrize("layout", ("variant", "bitpacked", "uint"))
def test_decode_cost(benchmark, layout):
    """Decode (to_array) time over the Google+ analog's neighborhoods —
    the per-intersection tax the compressed layouts pay."""
    benchmark.group = "appendixC:decode"
    hoods = dataset_neighborhoods("googleplus")
    encoded = [LAYOUTS[layout](hood) for hood in hoods]
    benchmark.pedantic(lambda: [s.to_array() for s in encoded],
                       rounds=3, iterations=1, warmup_rounds=1)


def test_shape_compressed_layouts_smaller_on_dense_data():
    """Variant/bitpacked beat uint on bytes for clustered neighborhoods
    (the paper: better compression than LZO/Snappy-class tools)."""
    import numpy as np
    dense_run = np.arange(10_000, 14_096)
    uint_bytes = UintSet(dense_run).nbytes
    assert VariantSet(dense_run).nbytes < uint_bytes / 3
    assert BitPackedSet(dense_run).nbytes < uint_bytes / 8


def test_shape_decode_tax_exists():
    """Compressed decode must cost measurably more than uint's no-op."""
    import time
    hoods = dataset_neighborhoods("googleplus")
    uint_sets = [UintSet(h) for h in hoods]
    variant_sets = [VariantSet(h) for h in hoods]
    start = time.perf_counter()
    for s in uint_sets:
        s.to_array()
    uint_time = time.perf_counter() - start
    start = time.perf_counter()
    for s in variant_sets:
        s.to_array()
    variant_time = time.perf_counter() - start
    assert variant_time > uint_time
