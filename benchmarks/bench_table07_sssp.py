"""Table 7: SSSP from the highest-degree node across engines.

Paper shape: Galois wins by 2-30x over EmptyHeaded (its delta-stepping
beats generated seminaive datalog), EmptyHeaded beats PowerGraph and
SociaLite by roughly an order of magnitude, LogicBlox trails by three.
"""

import pytest

from repro.baselines import (LogicBloxLike, ScalarGraphEngine,
                             SociaLiteLike, TunedGraphEngine)
from repro.graphs import DATASETS, highest_degree_node, sssp, sssp_program

from conftest import database_for, run_or_timeout, undirected_edges_of

DATASET_NAMES = sorted(DATASETS)


def source_of(dataset):
    return highest_degree_node(undirected_edges_of(dataset))


def decoded_source(db, dataset):
    """The engines index by raw ids; the database dictionary-encodes, so
    translate the raw source id through nothing — the loader kept the
    original ids as dictionary values."""
    return int(source_of(dataset))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_emptyheaded(benchmark, dataset):
    benchmark.group = "table07:" + dataset
    db = database_for(dataset, key="eh")
    source = decoded_source(db, dataset)
    run_or_timeout(benchmark, lambda: sssp(db, source))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_tuned_graph_engine(benchmark, dataset):
    benchmark.group = "table07:" + dataset
    both = undirected_edges_of(dataset)
    engine = TunedGraphEngine()
    source = source_of(dataset)
    run_or_timeout(benchmark, lambda: engine.sssp(both, source))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_scalar_graph_engine(benchmark, dataset):
    benchmark.group = "table07:" + dataset
    both = undirected_edges_of(dataset)
    engine = ScalarGraphEngine()
    source = source_of(dataset)
    run_or_timeout(benchmark, lambda: engine.sssp(both, source))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_socialite_like(benchmark, dataset):
    benchmark.group = "table07:" + dataset
    both = undirected_edges_of(dataset)
    engine = SociaLiteLike()
    source = source_of(dataset)
    run_or_timeout(benchmark, lambda: engine.sssp(both, source))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_logicblox_like(benchmark, dataset):
    benchmark.group = "table07:" + dataset
    engine = LogicBloxLike()
    engine.load_graph("Edge",
                      [tuple(e) for e in undirected_edges_of(dataset)],
                      undirected=False)
    source = source_of(dataset)
    run_or_timeout(benchmark,
                   lambda: engine.query(sssp_program(source)).to_dict())
