"""Logical optimizer: pass-pipeline overhead and rewrite payoffs.

The :mod:`repro.lir` pass pipeline sits between the parser and the
physical planner (see ``docs/architecture.md``).  This module prices
both sides of that trade at laptop scale:

``overhead``
    Wall time of the frontend + rewrite + plan phases alone
    (``optimize_rule`` + ``plan_rule``, no tuples joined), per rule.
    The pipeline must stay far below one bag evaluation, or the
    compiled path's cache-hit wins evaporate.
``pruning``
    A path query whose tail variable is purely existential —
    attribute pruning projects it away before GHD search, shrinking
    the trie the join walks.  Measured with the pass on vs off.
``cse``
    A two-rule program whose rules contain the *same* triangle bag —
    cross-rule common-subexpression elimination evaluates it once and
    reuses the result in the second rule.  Measured with
    ``cross_rule_cse`` on vs off.

Shape assertions pin the acceptance claims: identical results with
every rewrite disabled, the pruning/CSE configurations really do skip
work (trace-verified via ``BagMemo`` counters and relation arities),
and the whole pipeline runs in well under a millisecond per rule.

Run standalone for a quick report::

    python benchmarks/bench_optimizer.py --smoke
"""

import argparse
import time

import pytest

from repro import Database
from repro.graphs import TRIANGLE_COUNT, uniform_graph

#: A 3-hop path whose tail variable ``w`` is purely existential:
#: attribute pruning drops it (and deduplicates), so the last hop
#: enters the join as a unary "has an out-edge" filter.
PRUNABLE_QUERY = "P(x,y) :- Edge(x,y),Edge(y,z),Edge(z,w)."

#: Two rules sharing one triangle bag: cross-rule CSE evaluates the
#: triangle join once.
CSE_PROGRAM = ("A(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z). "
               "B(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).")

#: (nodes, edges, repetitions)
FULL_SCALE = (150, 700, 10)
SMOKE_SCALE = (80, 280, 4)

_EDGES = {}


def bench_edges(scale=FULL_SCALE):
    """Cached uniform edge list for one scale."""
    if scale not in _EDGES:
        nodes, edges, _ = scale
        _EDGES[scale] = [tuple(e) for e in uniform_graph(nodes, edges,
                                                         seed=29)]
    return _EDGES[scale]


def fresh_db(scale=FULL_SCALE, **overrides):
    db = Database(**overrides)
    db.load_graph("Edge", bench_edges(scale), prune=False)
    return db


def optimize_once(db, text):
    """Run frontend + rewrites + planning for every rule; no execution."""
    from repro.lir import OptimizerOptions, optimize_rule, plan_rule
    from repro.query.parser import parse
    options = OptimizerOptions.from_config(db.config)
    for rule in parse(text).rules:
        logical = optimize_rule(rule, db.catalog, options)
        plan_rule(logical, options)
    return logical


def best_of(fn, rounds=3):
    """Best-of-``rounds`` wall time; best-of damps scheduler noise."""
    times = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


# -- timed rows ---------------------------------------------------------------


def test_optimizer_pipeline_overhead(benchmark):
    from conftest import run_or_timeout
    benchmark.group = "optimizer:overhead"
    db = fresh_db()
    optimize_once(db, TRIANGLE_COUNT)  # warm lazy caches
    reps = FULL_SCALE[2]

    def run():
        for _ in range(reps):
            optimize_once(db, TRIANGLE_COUNT)

    run_or_timeout(benchmark, run)
    benchmark.extra_info["repetitions"] = reps


@pytest.mark.parametrize("prune", [True, False],
                         ids=["pruned", "unpruned"])
def test_attribute_pruning_execution(benchmark, prune):
    from conftest import run_or_timeout
    benchmark.group = "optimizer:pruning"
    db = fresh_db(prune_attributes=prune)
    db.query(PRUNABLE_QUERY)  # warm tries + derived relations

    def run():
        return db.query(PRUNABLE_QUERY).count

    count = run_or_timeout(benchmark, run)
    benchmark.extra_info["result_tuples"] = count


@pytest.mark.parametrize("cse", [True, False], ids=["cse", "no-cse"])
def test_cross_rule_cse_execution(benchmark, cse):
    from conftest import run_or_timeout
    benchmark.group = "optimizer:cse"
    db = fresh_db(cross_rule_cse=cse)
    db.query(CSE_PROGRAM)  # warm tries

    def run():
        return db.query(CSE_PROGRAM).count

    count = run_or_timeout(benchmark, run)
    benchmark.extra_info["result_tuples"] = count


# -- shape assertions (CI runs these without timing) --------------------------


def test_shape_rewrites_preserve_results():
    """Acceptance: every rewrite disabled computes the same answers."""
    baseline = fresh_db(prune_attributes=False, fold_constants=False,
                        cross_rule_cse=False)
    optimized = fresh_db()
    for text in (PRUNABLE_QUERY, CSE_PROGRAM, TRIANGLE_COUNT):
        expected = baseline.query(text)
        actual = optimized.query(text)
        if expected.relation.is_scalar():
            assert actual.scalar == expected.scalar
        else:
            assert sorted(actual.tuples()) == sorted(expected.tuples())


def test_shape_pruning_reduces_join_arity():
    """The pruned plan joins a unary slice, not the full binary edge
    relation, for the existential last hop."""
    from repro.lir import OptimizerOptions, optimize_rule
    from repro.query.parser import parse
    db = fresh_db()
    rule = parse(PRUNABLE_QUERY).rules[0]
    logical = optimize_rule(rule, db.catalog,
                            OptimizerOptions.from_config(db.config))
    arities = sorted(len(a.variables) for a in logical.atoms)
    assert arities == [1, 2, 2]


def test_shape_cse_reuses_the_shared_bag():
    """Acceptance: the second rule's triangle bag is a memo hit."""
    db = fresh_db()
    metrics = db.enable_metrics()
    db.query(CSE_PROGRAM)
    counters = {name: counter.value
                for name, counter in metrics.counters.items()}
    assert counters.get("cse.bag_hits", 0) >= 1


def test_shape_pipeline_overhead_is_small():
    """The whole logical pipeline stays well under one bag evaluation
    (sub-millisecond per rule at this scale)."""
    db = fresh_db()
    optimize_once(db, TRIANGLE_COUNT)  # warm
    per_rule = best_of(lambda: optimize_once(db, TRIANGLE_COUNT))
    assert per_rule < 0.05, "optimizer pipeline took %.1f ms" \
        % (per_rule * 1e3)


# -- standalone smoke report --------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="logical optimizer smoke benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="small graph, a few seconds end to end")
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    nodes, edge_count, reps = scale
    failures = []

    print("optimizer pipeline on uniform(%d nodes, %d edges):"
          % (nodes, edge_count))
    db = fresh_db(scale)
    optimize_once(db, TRIANGLE_COUNT)
    overhead = best_of(lambda: optimize_once(db, TRIANGLE_COUNT),
                       rounds=args.rounds)
    print("  %-24s %8.3f ms/rule" % ("pipeline overhead",
                                     overhead * 1e3))
    if overhead > 0.05:
        failures.append("pipeline overhead %.1f ms exceeds 50 ms"
                        % (overhead * 1e3))

    timings = {}
    for label, overrides, text in (
            ("pruning on", {"prune_attributes": True}, PRUNABLE_QUERY),
            ("pruning off", {"prune_attributes": False}, PRUNABLE_QUERY),
            ("cse on", {"cross_rule_cse": True}, CSE_PROGRAM),
            ("cse off", {"cross_rule_cse": False}, CSE_PROGRAM)):
        bench_db = fresh_db(scale, **overrides)
        bench_db.query(text)  # warm tries and caches
        timings[label] = best_of(
            lambda: [bench_db.query(text) for _ in range(reps)],
            rounds=args.rounds)
        print("  %-24s %8.3fs (x%d)" % (label, timings[label], reps))
    for feature in ("pruning", "cse"):
        on, off = timings["%s on" % feature], timings["%s off" % feature]
        print("  %-24s %8.2fx" % ("%s speedup" % feature, off / on))

    base = fresh_db(scale, prune_attributes=False, fold_constants=False,
                    cross_rule_cse=False)
    opt = fresh_db(scale)
    for text in (PRUNABLE_QUERY, CSE_PROGRAM):
        if sorted(base.query(text).tuples()) \
                != sorted(opt.query(text).tuples()):
            failures.append("results diverge on %r" % text)

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("OK: rewrites preserve results; pipeline overhead is small")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
