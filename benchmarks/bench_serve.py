"""Query daemon serving: warm-cache latency, mixed load, invalidation.

The ``repro.serve`` daemon (``repro serve``) keeps one
:class:`~repro.api.Database` alive across requests — tries, plan
cache, dictionary, and the keyed result cache all stay warm — where
the no-daemon alternative pays full database construction (load +
trie build + cold planning) on every request.  This module prices
that gap and proves the cache's surgical invalidation contract under
a real socket round trip.

Rows (group ``serve:triangle-latency``):

``cold``
    Per-request cost without the daemon: construct a fresh
    :class:`Database`, load the edge set, run the triangle count,
    close.  This is what a CLI/batch caller pays today.
``warm-miss``
    Daemon round trip with the result cache defeated (a fresh query
    text per request): socket + admission + a real execution on warm
    tries.
``warm-hit``
    Daemon round trip for a repeated query: socket + admission + a
    result-cache hit served off the event loop.

Acceptance: ``warm-hit`` p50 must beat ``cold`` p50 by >= 10x (the
issue's floor).  In practice the gap is orders of magnitude — a hit
skips parse, planning, and execution entirely.

The mixed-load generator (group ``serve:mixed-load``) drives N client
threads at a 90/10 read/write mix and reports client-observed
p50/p99/QPS; every reply is checked ``ok``.  The invalidation proof
runs a mutation against a relation *outside* the cached query's read
set (hits must survive) and then one *inside* it (the entry must
miss), asserting the daemon's own cache counters and the telemetry
tier counters (``telemetry.result_cache{tier=...}``) agree.

Run standalone::

    python benchmarks/bench_serve.py --smoke
"""

import argparse
import threading
import time

import numpy as np
import pytest

from repro import Database
from repro.serve import QueryService, ServeClient

TRIANGLES = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
             "w=<<COUNT(*)>>.")
TAG_COUNT = "C(;w:long) :- Tag(x); w=<<COUNT(*)>>."

#: Warm-cache p50 vs cold per-request construction p50 (issue floor).
FLOOR = 10.0

#: (nodes, edges) for the served graph.
FULL_SCALE = (600, 24000)
SMOKE_SCALE = (250, 5000)

#: Mixed-load shape: clients x requests, ~1 write per 10 requests.
MIX_CLIENTS = 4
MIX_REQUESTS = 40
WRITE_EVERY = 10

_GRAPHS = {}


def base_graph(scale=FULL_SCALE, seed=7):
    """Deduplicated random directed edge list as row tuples."""
    if scale not in _GRAPHS:
        nodes, edges = scale
        rng = np.random.default_rng(seed)
        raw = rng.integers(0, nodes, size=(edges * 2, 2),
                           dtype=np.int64)
        raw = raw[raw[:, 0] != raw[:, 1]]
        dedup = np.unique(raw, axis=0)[:edges]
        _GRAPHS[scale] = [tuple(int(v) for v in row) for row in dedup]
    return _GRAPHS[scale]


def fresh_db(scale):
    db = Database()
    db.add_relation("Edge", base_graph(scale))
    db.add_relation("Tag", [(1,), (2,), (3,)])
    return db


def start_service(scale, telemetry=False, telemetry_dir=None, **kwargs):
    """A live daemon over a freshly loaded database."""
    db = fresh_db(scale)
    if telemetry:
        db.enable_telemetry(directory=telemetry_dir)
    service = QueryService(db, **kwargs).start()
    return db, service


def percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def head_variant(index):
    """Same body, fresh head name — defeats the result cache while
    keeping execution cost constant (the ``warm-miss`` row)."""
    return TRIANGLES.replace("T(", "T%d(" % index, 1)


# -- measured paths -----------------------------------------------------------


def cold_request(scale):
    """The no-daemon baseline: one full construct-query-teardown."""
    db = fresh_db(scale)
    try:
        return db.query(TRIANGLES).relation.scalar_value
    finally:
        db.close()


def measure_cold(scale, requests):
    """Client-observed latencies of per-request construction."""
    latencies = []
    value = None
    for _ in range(requests):
        start = time.perf_counter()
        value = cold_request(scale)
        latencies.append(time.perf_counter() - start)
    return latencies, value


def measure_warm(scale, requests):
    """(hit latencies, miss latencies, value) through a live daemon."""
    db, service = start_service(scale)
    try:
        with ServeClient(port=service.port) as client:
            first = client.query(TRIANGLES, check=True)
            hits, misses = [], []
            for index in range(requests):
                start = time.perf_counter()
                reply = client.query(TRIANGLES, check=True)
                hits.append(time.perf_counter() - start)
                assert reply["cached"] is True, reply
                assert reply["result"] == first["result"]
                start = time.perf_counter()
                client.query(head_variant(index), check=True)
                misses.append(time.perf_counter() - start)
            return hits, misses, first["result"]["value"]
    finally:
        service.stop()
        db.close()


def measure_mixed(scale, clients=MIX_CLIENTS, requests=MIX_REQUESTS):
    """N threads, 90/10 read/write mix; client-observed latencies.

    Returns ``(read latencies, write latencies, wall seconds,
    failures)`` — the QPS denominator is the wall clock of the whole
    storm, so admission queueing shows up in the number.
    """
    db, service = start_service(scale, max_inflight=clients * 2)
    reads, writes, failures = [], [], []
    lock = threading.Lock()

    def worker(index):
        with ServeClient(port=service.port) as client:
            for step in range(requests):
                if step % WRITE_EVERY == WRITE_EVERY - 1:
                    start = time.perf_counter()
                    reply = client.call_with_retry(
                        "append", name="Tag",
                        tuples=[[100 + index * requests + step]])
                    elapsed = time.perf_counter() - start
                    bucket = writes
                else:
                    text = TRIANGLES if step % 2 else TAG_COUNT
                    start = time.perf_counter()
                    reply = client.call_with_retry("query", text=text)
                    elapsed = time.perf_counter() - start
                    bucket = reads
                with lock:
                    bucket.append(elapsed)
                    if reply["status"] != "ok":
                        failures.append((index, step, reply))

    try:
        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(clients)]
        wall = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall
    finally:
        service.stop()
        db.close()
    return reads, writes, wall, failures


def invalidation_proof(scale):
    """Drive the acceptance scenario and return the evidence.

    Sequence: miss, hit, unrelated mutation (``Tag`` is outside the
    triangle query's read set), hit *survives*; related mutation
    (``Edge``), entry invalidated, miss, then hit again.  Evidence is
    the daemon's cache counters plus the telemetry tier counters —
    two independent witnesses of the same tier sequence.
    """
    db, service = start_service(scale, telemetry=True)
    try:
        with ServeClient(port=service.port) as client:
            tiers = []
            tiers.append(client.query(TRIANGLES, check=True)["cached"])
            tiers.append(client.query(TRIANGLES, check=True)["cached"])
            client.append("Tag", [(99,)], check=True)
            survived = client.query(TRIANGLES, check=True)
            tiers.append(survived["cached"])
            client.append("Edge", [(9990, 9991)], check=True)
            invalidated = client.query(TRIANGLES, check=True)
            tiers.append(invalidated["cached"])
            tiers.append(client.query(TRIANGLES, check=True)["cached"])
            counters = db.metrics.snapshot()["counters"]
            return {
                "tiers": tiers,
                "cache": service.cache.snapshot(),
                "telemetry_hits": counters.get(
                    "telemetry.result_cache{tier=hit}", 0),
                "telemetry_misses": counters.get(
                    "telemetry.result_cache{tier=miss}", 0),
            }
    finally:
        service.stop()
        db.close()


def check_invalidation(evidence):
    """Failure strings (empty = the invalidation contract held)."""
    failures = []
    if evidence["tiers"] != [False, True, True, False, True]:
        failures.append(
            "tier sequence %r != [miss, hit, hit-after-unrelated-"
            "mutation, miss-after-related-mutation, hit]"
            % (evidence["tiers"],))
    cache = evidence["cache"]
    if cache["hits"] != 3 or cache["misses"] != 2:
        failures.append("daemon cache counters %r != 3 hits / 2 misses"
                        % (cache,))
    if evidence["telemetry_hits"] != 3 \
            or evidence["telemetry_misses"] != 2:
        failures.append(
            "telemetry tier counters hit=%s miss=%s != 3/2"
            % (evidence["telemetry_hits"],
               evidence["telemetry_misses"]))
    return failures


# -- timed rows ---------------------------------------------------------------


def test_cold_per_request_construction(benchmark):
    from conftest import run_or_timeout
    benchmark.group = "serve:triangle-latency"
    result = run_or_timeout(benchmark,
                            lambda: cold_request(FULL_SCALE),
                            prewarm=False)
    benchmark.extra_info["result"] = result


@pytest.mark.parametrize("row", ["warm-hit", "warm-miss"])
def test_warm_daemon_round_trip(benchmark, row):
    from conftest import run_or_timeout
    benchmark.group = "serve:triangle-latency"
    db, service = start_service(FULL_SCALE)
    counter = iter(range(10 ** 6))
    try:
        with ServeClient(port=service.port) as client:
            client.query(TRIANGLES, check=True)  # prime the cache

            def hit():
                return client.query(TRIANGLES,
                                    check=True)["result"]["value"]

            def miss():
                return client.query(head_variant(next(counter)),
                                    check=True)["result"]["value"]

            result = run_or_timeout(
                benchmark, hit if row == "warm-hit" else miss,
                prewarm=False)
            benchmark.extra_info["result"] = result
    finally:
        service.stop()
        db.close()


# -- shape assertions ---------------------------------------------------------


def test_shape_warm_results_match_direct_execution():
    """The daemon's answers — hit or miss — equal a direct query."""
    db = fresh_db(SMOKE_SCALE)
    expected = db.query(TRIANGLES).relation.scalar_value
    db.close()
    hits, misses, value = measure_warm(SMOKE_SCALE, requests=3)
    assert value == expected
    assert len(hits) == len(misses) == 3


def test_shape_invalidation_is_surgical():
    evidence = invalidation_proof(SMOKE_SCALE)
    assert not check_invalidation(evidence), evidence


def test_shape_mixed_load_all_ok():
    reads, writes, wall, failures = measure_mixed(
        SMOKE_SCALE, clients=3, requests=12)
    assert not failures, failures[:3]
    assert len(reads) + len(writes) == 3 * 12
    assert wall > 0


# -- standalone smoke / acceptance gate ---------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="query daemon serving benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller graph, a few seconds end to end")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per measured row")
    parser.add_argument("--json", metavar="PATH",
                        help="merge pytest-benchmark-shaped rows into "
                             "PATH (see benchmarks/report.py)")
    parser.add_argument("--telemetry", metavar="DIR", default=None,
                        help="write the invalidation-proof daemon's "
                             "telemetry artifacts into DIR")
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE
    requests = args.requests or (8 if args.smoke else 15)
    print("served graph: %d nodes, %d edges" % scale)

    cold, cold_value = measure_cold(scale, max(3, requests // 3))
    hits, misses, warm_value = measure_warm(scale, requests)
    failures = []
    if warm_value != cold_value:
        failures.append("daemon result %r != direct result %r"
                        % (warm_value, cold_value))
    cold_p50 = percentile(cold, 0.5)
    hit_p50, hit_p99 = percentile(hits, 0.5), percentile(hits, 0.99)
    miss_p50 = percentile(misses, 0.5)
    speedup = cold_p50 / hit_p50
    print("  cold       p50 %8.5fs   (per-request construction)"
          % cold_p50)
    print("  warm-miss  p50 %8.5fs   (daemon, cache defeated)"
          % miss_p50)
    print("  warm-hit   p50 %8.5fs   p99 %8.5fs   speedup %7.1fx"
          % (hit_p50, hit_p99, speedup))
    if speedup < FLOOR:
        failures.append("warm-hit p50 %.2fx over cold (floor %.1fx)"
                        % (speedup, FLOOR))

    reads, writes, wall, mix_failures = measure_mixed(scale)
    total = len(reads) + len(writes)
    qps = total / wall if wall else 0.0
    read_p50 = percentile(reads, 0.5)
    read_p99 = percentile(reads, 0.99)
    write_p50 = percentile(writes, 0.5)
    print("  mixed load: %d clients, %d requests, %.0f req/s" % (
        MIX_CLIENTS, total, qps))
    print("    reads  p50 %8.5fs  p99 %8.5fs" % (read_p50, read_p99))
    print("    writes p50 %8.5fs" % write_p50)
    if mix_failures:
        failures.append("mixed load: %d non-ok replies: %r"
                        % (len(mix_failures), mix_failures[:3]))

    evidence = invalidation_proof(scale)
    failures.extend(check_invalidation(evidence))
    print("  invalidation: tiers %s, telemetry hit=%d miss=%d"
          % (["hit" if t else "miss" for t in evidence["tiers"]],
             evidence["telemetry_hits"], evidence["telemetry_misses"]))
    if args.telemetry:
        db, service = start_service(scale, telemetry=True,
                                    telemetry_dir=args.telemetry)
        with ServeClient(port=service.port) as client:
            client.query(TRIANGLES, check=True)
            client.query(TRIANGLES, check=True)
        service.stop()
        db.close()
        print("  telemetry artifacts in %s" % args.telemetry)

    if args.json:
        from jsonio import bench_row, write_results
        group = "serve:triangle-latency"
        benches = [
            bench_row("cold", group, cold_p50, result=cold_value,
                      speedup=1.0),
            bench_row("warm-miss", group, miss_p50, result=warm_value,
                      speedup=round(cold_p50 / miss_p50, 3)),
            bench_row("warm-hit", group, hit_p50, result=warm_value,
                      p99=round(hit_p99, 6),
                      speedup=round(speedup, 3)),
            bench_row("mixed-read", "serve:mixed-load", read_p50,
                      p99=round(read_p99, 6), qps=round(qps, 1),
                      clients=MIX_CLIENTS),
            bench_row("mixed-write", "serve:mixed-load", write_p50,
                      clients=MIX_CLIENTS),
        ]
        write_results(args.json, "serve", benches)
        print("wrote %d rows to %s" % (len(benches), args.json))
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("OK: warm-hit %.1fx over cold (floor %.1fx); invalidation "
          "surgical; %d/%d mixed requests ok"
          % (speedup, FLOOR, total - len(mix_failures), total))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
