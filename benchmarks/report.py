"""Generate EXPERIMENTS.md from a pytest-benchmark JSON dump.

Usage::

    pytest benchmarks/ --benchmark-only \
        --benchmark-json=bench_results.json
    python benchmarks/report.py bench_results.json > EXPERIMENTS.md

Groups benchmarks by their ``benchmark.group`` (``tableNN:...`` /
``figNN:...``), renders one markdown table per experiment with wall time
and the simulated-SIMD op counts the harness attaches via
``extra_info``, and prefixes each with the paper's expected shape.

Perf-diff mode::

    python benchmarks/report.py --diff \
        benchmarks/baselines/bench_results.json current.json \
        [--threshold 1.25]

Compares the *speedup ratios* each smoke benchmark stamps into
``extra_info["speedup"]`` (wall time relative to that group's baseline
row — ``interpreted`` for codegen, ``serial`` for parallel scaling).
Ratios are machine-relative, so a committed baseline from one host is
comparable with a CI run on another: absolute times shift together,
the ratio between rows should not.  Exits nonzero when any row's
speedup degraded by more than ``--threshold`` (default 1.25 = a >25%
regression) — the CI ``perf-smoke`` job fails on that signal.

Trajectory mode::

    python benchmarks/report.py --diff-latest \
        benchmarks/baselines current.json
    python benchmarks/report.py current.json \
        --append-trajectory benchmarks/baselines

The trajectory is the sequence ``BENCH_1.json``, ``BENCH_2.json``, ...
under the baselines directory — one entry per recorded run, so perf
history stays diffable in git rather than a single overwritten
baseline.  ``--diff-latest`` compares against the highest-numbered
entry (falling back to the legacy ``bench_results.json`` when no
trajectory exists yet) and ``--append-trajectory`` records the current
results as the next entry.
"""

import argparse
import json
import os
import re
import shutil
import sys
from collections import defaultdict

#: Expected-shape commentary per experiment id, written against the
#: paper's tables/figures.  Rendered above each measured table.
EXPECTATIONS = {
    "codegen": (
        "Paper §3.3: compiled execution with plan caching — on a "
        "repeated small-graph pattern query, compiled+cached beats "
        "interpreted on wall-clock because a cache hit skips parse, "
        "GHD search, and code generation (the counters in extra_info "
        "show zero on the cached path); the uncached compiled row "
        "prices the full pipeline and lands between the two.  Lane "
        "ops per repetition match the interpreter — the win is "
        "pipeline overhead, not cheaper arithmetic.  The "
        "phase_compile_ms / phase_execute_ms columns come from one "
        "extra traced repetition (repro.obs span tracer) and are "
        "re-rendered in the phase-breakdown section at the bottom."),
    "optimizer": (
        "Logical pass pipeline (docs/architecture.md): the overhead "
        "row prices frontend + rewrites + planning alone and must sit "
        "far below one bag evaluation (sub-millisecond per rule at "
        "this scale).  The pruned variant beats unpruned on the "
        "existential-tail path query because attribute pruning "
        "projects the tail away before GHD search; the cse variant "
        "beats no-cse on the two-rule shared-triangle program because "
        "the second rule's bag is a memo hit (cse.bag_hits in "
        "metrics).  Results are identical across all variants."),
    "adaptive": (
        "Adaptive self-tuning (repro.tune): the tuned rows run with a "
        "live machine calibration installed, so on the skewed "
        "common-neighbour workload the galloping kernel engages at "
        "this substrate's real crossover instead of the paper's 32:1 "
        "constant — tuned should beat default by >= 1.3x at full "
        "scale, and the fused-tuned row prices the calibrated block "
        "budget plus the skew-aware probe sweep.  All four rows return "
        "bit-identical results; extra_info carries the calibrated "
        "crossover and the workload's skew ratio."),
    "telemetry": (
        "Continuous telemetry (repro.obs.telemetry): running the full "
        "pipeline — write-ahead in-flight journal, rotating JSONL "
        "query log, flight ring, labeled lifetime series — must cost "
        "at most 2% of wall time on the codegen smoke workload, and "
        "telemetry off stays one `is None` test on the hot path.  The "
        "wall rows (off / telemetry / telemetry+disk) should be "
        "indistinguishable at this scale; the acceptance number is "
        "the wrapper-overhead row, whose speedup column is "
        "budget/measured (>= 1.0 means within the 2% budget, and the "
        "perf-diff gate trips long before instrumentation cost "
        "reaches the budget)."),
    "incremental": (
        "Incremental view maintenance (repro.engine.incremental): on "
        "the triangle-count view, the delta rows append a mutation "
        "batch and refresh through the semi-naive route (7 signed "
        "inclusion–exclusion terms over the batch-sized Δ relation), "
        "the rebuild rows re-run the defining program from scratch "
        "(incremental_views=False).  Delta must beat rebuild >= 5x at "
        "the 0.1% mutation rate at full scale; the gap narrows toward "
        "1x (and inverts) as the rate grows, because the delta terms "
        "approach full-join size while paying 7x the per-rule "
        "overhead.  Both routes return bit-identical view contents — "
        "the mutation fuzzer enforces the same contract across the "
        "whole config matrix."),
    "serve": (
        "Query daemon (repro.serve): the cold row prices the "
        "no-daemon path — full Database construction, trie build, and "
        "cold planning per request; warm-miss is a daemon round trip "
        "with the result cache defeated (fresh head name per request, "
        "so socket + admission + real execution on warm tries); "
        "warm-hit is a repeated query served straight off the event "
        "loop from the keyed result cache.  Warm-hit p50 must beat "
        "cold p50 >= 10x (the acceptance floor; in practice orders of "
        "magnitude — a hit skips parse, planning, and execution).  "
        "The mixed-load rows are client-observed latencies under a "
        "4-client 90/10 read/write storm; the invalidation proof "
        "(asserted by the smoke gate, not a row) shows hits surviving "
        "unrelated-relation mutations while mutated-relation entries "
        "miss, with the daemon cache counters and the telemetry "
        "result_cache tier counters agreeing."),
    "parallel": (
        "Paper §5.1.2: dynamic load balancing on power-law graphs — "
        "4-worker work stealing beats the static np.array_split "
        "partitioner on wall-clock, with a max/min worker-busy ratio "
        "near 1 where static's explodes (~10-20x, every hub lands in "
        "its first chunk under degree ordering).  Absolute speedup "
        "over serial depends on host core count; the busy-ratio gap "
        "does not."),
    "table04": (
        "Paper Table 4: optimizer level vs oracle — set level closest "
        "overall (1.1-1.6x); relation level worst on the high-skew "
        "dataset; block level in between.  Compare the x_oracle column."),
    "table05": (
        "Paper Table 5: triangle counting — EmptyHeaded first on every "
        "dataset in algorithmic work (model_ops), low-level engines "
        "within small factors, high-level engines orders of magnitude "
        "behind (SociaLite t/o on the largest).  Wall time in pure "
        "Python additionally reflects interpreter constants; see the "
        "metrics note in EXPERIMENTS.md."),
    "table06": (
        "Paper Table 6: PageRank x5 — EmptyHeaded within small factors "
        "of the tuned (Galois-class) engine, ahead of the per-vertex "
        "scalar engines, an order of magnitude ahead of "
        "SociaLite/LogicBlox classes."),
    "table07": (
        "Paper Table 7: SSSP — the tuned (Galois-class) engine wins by "
        "2-30x; EmptyHeaded beats the scalar vertex-program and datalog "
        "engines; LogicBlox-class far behind."),
    "table08": (
        "Paper Table 8: K4/L31/B31 with ablations — '-R' costs up to "
        "orders of magnitude (layouts), '-RA' more, '-GHD' blows up or "
        "times out on B31, is skipped for K4 (single bag optimal); "
        "SociaLite/LogicBlox classes t/o or trail by orders of "
        "magnitude."),
    "table09": (
        "Paper Table 9: ordering costs — degree/rev-degree cheapest, "
        "BFS linear in edges, hybrid ≈ BFS + degree, shingle/strong-"
        "runs in between."),
    "table10": (
        "Paper Table 10: random-vs-degree ordering matters little "
        "without symmetric filtering and more with it; the set-level "
        "optimizer is more robust to bad orderings than uint-only."),
    "table11": (
        "Paper Table 11: '-S' (no SIMD) costs ~1-2x, '-R' most on "
        "high-skew data, '-SR' compounds; effects larger on default "
        "(unfiltered) data."),
    "table13": (
        "Paper Table 13: selection push-down wins large factors, most "
        "on low-selectivity (low-degree) nodes; '-GHD' (no push-down) "
        "much slower; LogicBlox-class trails."),
    "table14": (
        "Paper Table 14: neighborhood sets are extremely sparse — mean "
        "range dwarfs mean cardinality."),
    "table15": (
        "Paper Table 15: layout-decision overhead single-digit percent "
        "for the set optimizer, 2-3x more for block level."),
    "fig05": (
        "Paper Figure 5: uint wins sparse, bitset wins dense, with a "
        "density crossover."),
    "fig06": (
        "Paper Figure 6: the block-composite layout beats homogeneous "
        "layouts on sets with internal dense regions (up to 2x)."),
    "fig07": (
        "Paper Figure 7: degree ordering best at low power-law "
        "exponents, BFS best at high; hybrid tracks the winner."),
    "fig09": (
        "Paper Figure 9: best layout pair by density; compressed "
        "layouts (variant/bitpacked) never win due to decode cost."),
    "fig10": (
        "Paper Figure 10: galloping overtakes shuffling past the 32:1 "
        "cardinality ratio and dominates at extreme skew."),
    "fig11": (
        "Paper Figure 11: at equal cardinalities the shuffling family "
        "leads across densities; BMiss pays for prefix collisions on "
        "dense ranges."),
    "asymptotics": (
        "Paper §1 / §2.1: EmptyHeaded's op count tracks the AGM bound "
        "(~N^1.5 on complete graphs, sublinear constants from bitsets); "
        "the pairwise engine's wedge intermediate is Θ(N²) on star "
        "graphs."),
    "appendixC": (
        "Paper Appendix C.1: variant/bitpacked compress clustered "
        "data well below 4 bytes/value but pay a decode on every "
        "use; uint is the fast, incompressible baseline."),
    "ablation-b2": (
        "Paper Appendix B.2: reusing the identical Barbell triangle bag "
        "≈2x; skipping the top-down pass ~10%."),
}


def load(path):
    with open(path) as handle:
        return json.load(handle)


def experiment_of(group):
    return group.split(":", 1)[0] if group else "ungrouped"


def render(data):
    by_experiment = defaultdict(lambda: defaultdict(list))
    for bench in data["benchmarks"]:
        group = bench.get("group") or "ungrouped"
        by_experiment[experiment_of(group)][group].append(bench)

    lines = []
    for experiment in sorted(by_experiment):
        lines.append("### %s" % experiment)
        lines.append("")
        expectation = EXPECTATIONS.get(experiment)
        if expectation:
            lines.append("*Expected shape:* %s" % expectation)
            lines.append("")
        for group in sorted(by_experiment[experiment]):
            benches = by_experiment[experiment][group]
            benches.sort(key=lambda b: b["stats"]["mean"])
            lines.append("**%s**" % group)
            lines.append("")
            extra_keys = sorted({key for bench in benches
                                 for key in bench.get("extra_info", {})})
            header = ["engine/variant", "wall (ms)", "rel"] + extra_keys
            lines.append("| " + " | ".join(header) + " |")
            lines.append("|" + "---|" * len(header))
            best = benches[0]["stats"]["mean"]
            for bench in benches:
                name = bench["name"].replace("test_", "", 1)
                mean_ms = bench["stats"]["mean"] * 1000
                row = [name, "%.1f" % mean_ms,
                       "%.2fx" % (bench["stats"]["mean"] / best)]
                for key in extra_keys:
                    value = bench.get("extra_info", {}).get(key, "")
                    row.append(str(value))
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
    phase_lines = render_phase_breakdown(data)
    if phase_lines:
        lines.extend(phase_lines)
    return "\n".join(lines)


def render_phase_breakdown(data):
    """Compile-vs-execute table for benchmarks that stamped per-phase
    timings (``phase_compile_ms`` / ``phase_execute_ms`` in
    ``extra_info``, measured by one traced repetition through the
    ``repro.obs`` span tracer)."""
    rows = []
    for bench in data["benchmarks"]:
        extra = bench.get("extra_info", {})
        if "phase_compile_ms" not in extra:
            continue
        compile_ms = float(extra["phase_compile_ms"])
        execute_ms = float(extra["phase_execute_ms"])
        total = compile_ms + execute_ms
        rows.append((bench.get("group") or "ungrouped",
                     bench["name"].replace("test_", "", 1),
                     compile_ms, execute_ms,
                     100.0 * compile_ms / total if total else 0.0))
    if not rows:
        return []
    lines = ["### phase breakdown (compile vs execute)", "",
             "*One traced repetition per row: time in the pipeline "
             "front (parse, GHD search, attribute ordering, codegen, "
             "plan-cache lookups) vs time executing bags.  Cached "
             "rows should spend ~everything in execute.*", "",
             "| group | engine/variant | compile (ms) | execute (ms) "
             "| compile share |",
             "|---|---|---|---|---|"]
    for group, name, compile_ms, execute_ms, share in sorted(rows):
        lines.append("| %s | %s | %.3f | %.3f | %.1f%% |"
                     % (group, name, compile_ms, execute_ms, share))
    lines.append("")
    return lines


def _speedup_index(data):
    """``{(group, name): speedup}`` for rows that stamped one."""
    index = {}
    for bench in data.get("benchmarks", []):
        speedup = bench.get("extra_info", {}).get("speedup")
        if speedup is None:
            continue
        index[(bench.get("group") or "ungrouped",
               bench["name"])] = float(speedup)
    return index


def render_diff(base, current, threshold):
    """Markdown perf-diff of two smoke-benchmark JSON dumps.

    Returns ``(lines, regressions)`` where ``regressions`` lists every
    row whose speedup (machine-relative, see the module docstring)
    degraded by more than ``threshold``.  Rows present on only one
    side are reported but never fail the diff — new benchmarks must
    not break CI before their baseline lands.
    """
    base_index = _speedup_index(base)
    current_index = _speedup_index(current)
    lines = ["### perf diff (speedup ratios, threshold %.2fx)"
             % threshold, "",
             "*Speedups are relative to each group's baseline row, so "
             "the comparison is machine-independent.  ratio = "
             "base / current; above the threshold = regression.*", "",
             "| group | engine/variant | base | current | ratio | |",
             "|---|---|---|---|---|---|"]
    regressions = []
    for key in sorted(set(base_index) | set(current_index)):
        group, name = key
        base_speedup = base_index.get(key)
        current_speedup = current_index.get(key)
        if base_speedup is None or current_speedup is None:
            lines.append("| %s | %s | %s | %s | - | only in %s |"
                         % (group, name,
                            "-" if base_speedup is None
                            else "%.2fx" % base_speedup,
                            "-" if current_speedup is None
                            else "%.2fx" % current_speedup,
                            "current" if base_speedup is None
                            else "base"))
            continue
        ratio = base_speedup / max(current_speedup, 1e-9)
        verdict = ""
        if ratio > threshold:
            verdict = "**REGRESSION**"
            regressions.append("%s/%s: speedup %.2fx -> %.2fx "
                               "(%.2fx worse)"
                               % (group, name, base_speedup,
                                  current_speedup, ratio))
        elif ratio < 1.0 / threshold:
            verdict = "improved"
        lines.append("| %s | %s | %.2fx | %.2fx | %.2f | %s |"
                     % (group, name, base_speedup, current_speedup,
                        ratio, verdict))
    lines.append("")
    return lines, regressions


def trajectory_entries(directory):
    """Sorted ``[(index, path)]`` of ``BENCH_<n>.json`` files."""
    entries = []
    if os.path.isdir(directory):
        for name in os.listdir(directory):
            match = re.match(r"BENCH_(\d+)\.json$", name)
            if match:
                entries.append((int(match.group(1)),
                                os.path.join(directory, name)))
    return sorted(entries)


def latest_baseline(directory):
    """Path of the highest-numbered trajectory entry, falling back to
    the legacy single-file ``bench_results.json``, else ``None``."""
    entries = trajectory_entries(directory)
    if entries:
        return entries[-1][1]
    legacy = os.path.join(directory, "bench_results.json")
    return legacy if os.path.exists(legacy) else None


def append_trajectory(directory, results_path):
    """Record ``results_path`` as the next ``BENCH_<n>.json`` entry."""
    entries = trajectory_entries(directory)
    index = entries[-1][0] + 1 if entries else 1
    if not os.path.isdir(directory):
        os.makedirs(directory)
    destination = os.path.join(directory, "BENCH_%d.json" % index)
    shutil.copyfile(results_path, destination)
    return destination


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="render or diff benchmark JSON dumps")
    parser.add_argument("results", nargs="?",
                        help="pytest-benchmark JSON to render as "
                             "EXPERIMENTS.md tables")
    parser.add_argument("--diff", nargs=2, metavar=("BASE", "CURRENT"),
                        help="compare two smoke-benchmark dumps by "
                             "speedup ratio instead of rendering")
    parser.add_argument("--diff-latest", nargs=2,
                        metavar=("BASEDIR", "CURRENT"),
                        help="like --diff, but the base is the latest "
                             "BENCH_<n>.json trajectory entry in "
                             "BASEDIR (fallback: bench_results.json)")
    parser.add_argument("--append-trajectory", metavar="DIR",
                        help="record the results file as the next "
                             "BENCH_<n>.json entry under DIR")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="speedup-degradation ratio that fails "
                             "the diff (default 1.25 = >25%% slower)")
    args = parser.parse_args(argv)
    if args.diff or args.diff_latest:
        if args.diff:
            base_path, current_path = args.diff
        else:
            base_dir, current_path = args.diff_latest
            base_path = latest_baseline(base_dir)
            if base_path is None:
                print("no trajectory entries or bench_results.json "
                      "under %s; nothing to diff against" % base_dir)
                return 0
            print("diffing against %s" % base_path)
        lines, regressions = render_diff(load(base_path),
                                         load(current_path),
                                         args.threshold)
        print("\n".join(lines))
        if regressions:
            for regression in regressions:
                print("FAIL: %s" % regression, file=sys.stderr)
            return 1
        return 0
    if not args.results:
        parser.error("provide a results file, --diff BASE CURRENT, "
                     "or --diff-latest BASEDIR CURRENT")
    if args.append_trajectory:
        destination = append_trajectory(args.append_trajectory,
                                        args.results)
        print("recorded %s" % destination)
        return 0
    print(render(load(args.results)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
