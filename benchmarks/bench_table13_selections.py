"""Table 13: selection queries SK4 and SB_{3,1} with push-down ablation.

Each micro dataset runs the 4-clique-selection and barbell-selection
queries twice — selecting a high-degree node (large output) and a
low-degree node (small output) — under the full engine, the "-GHD"
push-down ablation (selections not sunk across GHD nodes), and the
LogicBlox-class engine.

Paper shape: push-down wins by large factors, most dramatically on the
low-output-cardinality (low-degree) selections; competitors time out or
trail by orders of magnitude.
"""

import numpy as np
import pytest

from repro.baselines import LogicBloxLike
from repro.graphs import (MICRO_DATASETS, degrees,
                          selection_barbell_count,
                          selection_four_clique_count)

from conftest import (database_for, edges_of, run_or_timeout,
                      undirected_edges_of)

QUERY_MAKERS = {
    "SK4": selection_four_clique_count,
    "SB31": selection_barbell_count,
}


def selected_nodes(dataset):
    """(high-degree, low-degree) original node ids, as Table 13 varies
    selectivity by the selected node's degree."""
    edges = edges_of(dataset)
    degree = degrees(edges, int(edges.max()) + 1)
    present = np.nonzero(degree)[0]
    high = int(present[np.argmax(degree[present])])
    # low: a degree>=2 node so the queries are non-trivially selective
    low_candidates = present[degree[present] >= 2]
    low = int(low_candidates[np.argmin(degree[low_candidates])])
    return {"high": high, "low": low}


@pytest.mark.parametrize("dataset", MICRO_DATASETS)
@pytest.mark.parametrize("query_name", sorted(QUERY_MAKERS))
@pytest.mark.parametrize("selectivity", ("high", "low"))
@pytest.mark.parametrize("variant", ("full", "-GHD"))
def test_selection_queries(benchmark, dataset, query_name, selectivity,
                           variant):
    benchmark.group = "table13:%s:%s:%s" % (dataset, query_name,
                                            selectivity)
    node = selected_nodes(dataset)[selectivity]
    query = QUERY_MAKERS[query_name](node)
    overrides = {} if variant == "full" else {"push_selections": False}
    db = database_for(dataset, key="t13:" + variant, **overrides)
    result = run_or_timeout(benchmark, lambda: db.query(query).scalar)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["out"] = result


@pytest.mark.parametrize("dataset", ("patents", "higgs"))
@pytest.mark.parametrize("query_name", sorted(QUERY_MAKERS))
def test_logicblox_like(benchmark, dataset, query_name):
    benchmark.group = "table13:%s:%s:high" % (dataset, query_name)
    node = selected_nodes(dataset)["high"]
    query = QUERY_MAKERS[query_name](node)
    engine = LogicBloxLike()
    engine.load_graph(
        "Edge", [tuple(e) for e in undirected_edges_of(dataset)],
        undirected=False)
    run_or_timeout(benchmark, lambda: engine.query(query).scalar)
