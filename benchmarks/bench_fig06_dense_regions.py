"""Figure 6: the block-composite layout on sets with dense regions.

Sets are sparse except for one contiguous dense run whose share of the
elements sweeps from 0% to 90%.  Paper shape: the composite layout
tracks the better of uint/bitset at the extremes and beats both (up to
2x) in the mixed-density middle, because it stores the dense run as
bitset blocks and the sparse remainder as uint blocks.
"""

import pytest

from repro.graphs import set_with_dense_region
from repro.sets import BitSet, BlockedSet, OpCounter, UintSet, intersect

TOTAL = 40_000
RANGE = 2_000_000
FRACTIONS = (0.0, 0.3, 0.6, 0.9)
LAYOUTS = {"uint": UintSet, "bitset": BitSet, "block": BlockedSet}


def make_pair(fraction, layout):
    a = set_with_dense_region(TOTAL, RANGE, fraction, seed=1)
    b = set_with_dense_region(TOTAL, RANGE, fraction, seed=2)
    return layout(a), layout(b)


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_dense_region_layouts(benchmark, fraction, layout):
    benchmark.group = "fig06:dense=%g" % fraction
    set_a, set_b = make_pair(fraction, LAYOUTS[layout])
    once = OpCounter()
    intersect(set_a, set_b, once)
    benchmark.extra_info["model_ops"] = once.total_ops
    benchmark.pedantic(lambda: intersect(set_a, set_b, OpCounter()),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_shape_composite_wins_on_mixed_density():
    def ops(fraction, layout):
        set_a, set_b = make_pair(fraction, layout)
        counter = OpCounter()
        intersect(set_a, set_b, counter)
        return counter.total_ops

    mixed = 0.6
    assert ops(mixed, BlockedSet) < ops(mixed, UintSet)
    assert ops(mixed, BlockedSet) < ops(mixed, BitSet)
