"""Shared JSON emission for the standalone benchmark smoke reports.

Both smoke benchmarks (``bench_codegen.py --json``,
``bench_parallel_scaling.py --json``) write their rows through
:func:`write_results` in the same shape pytest-benchmark dumps
(``{"benchmarks": [{name, group, stats: {mean}, extra_info}]}``), so
``report.py`` renders and diffs either source.  Writes merge by
experiment: rows whose group belongs to the writing experiment are
replaced, everything else is preserved — the two smoke benchmarks can
therefore share one baseline file
(``benchmarks/baselines/bench_results.json``).
"""

import json
import os


def bench_row(name, group, mean_seconds, **extra_info):
    """One pytest-benchmark-shaped result row."""
    return {"name": name, "group": group,
            "stats": {"mean": mean_seconds},
            "extra_info": extra_info}


def write_results(path, experiment, benches):
    """Merge ``benches`` (rows of one ``experiment``) into ``path``."""
    existing = []
    if os.path.exists(path):
        with open(path) as handle:
            existing = json.load(handle).get("benchmarks", [])
    kept = [bench for bench in existing
            if (bench.get("group") or "").split(":", 1)[0] != experiment]
    payload = {"benchmarks": kept + benches}
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
