"""Table 6: five PageRank iterations across engines.

Paper shape: EmptyHeaded within small factors of Galois (sometimes
slightly slower), consistently 2-4x faster than PowerGraph/CGT-X-class
engines, and an order of magnitude ahead of SociaLite/LogicBlox.
Runs on undirected datasets.
"""

import pytest

from repro.baselines import (LogicBloxLike, ScalarGraphEngine,
                             SociaLiteLike, TunedGraphEngine)
from repro.graphs import DATASETS, pagerank, pagerank_program

from conftest import database_for, run_or_timeout, undirected_edges_of

DATASET_NAMES = sorted(DATASETS)
ITERATIONS = 5


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_emptyheaded(benchmark, dataset):
    benchmark.group = "table06:" + dataset
    db = database_for(dataset, key="eh")
    run_or_timeout(benchmark, lambda: pagerank(db, iterations=ITERATIONS))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_tuned_graph_engine(benchmark, dataset):
    """Galois class: vectorized gather/scatter PageRank."""
    benchmark.group = "table06:" + dataset
    both = undirected_edges_of(dataset)
    engine = TunedGraphEngine()
    run_or_timeout(benchmark,
                   lambda: engine.pagerank(both, iterations=ITERATIONS))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_scalar_graph_engine(benchmark, dataset):
    """PowerGraph/CGT-X class: per-vertex loops."""
    benchmark.group = "table06:" + dataset
    both = undirected_edges_of(dataset)
    engine = ScalarGraphEngine()
    run_or_timeout(benchmark,
                   lambda: engine.pagerank(both, iterations=ITERATIONS))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_socialite_like(benchmark, dataset):
    """SociaLite class: rule-at-a-time over edge tuples."""
    benchmark.group = "table06:" + dataset
    both = undirected_edges_of(dataset)
    engine = SociaLiteLike()
    run_or_timeout(benchmark,
                   lambda: engine.pagerank(both, iterations=ITERATIONS))


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_logicblox_like(benchmark, dataset):
    """LogicBlox class: same queries, scalar uint-only engine."""
    benchmark.group = "table06:" + dataset
    engine = LogicBloxLike()
    engine.load_graph("Edge",
                      [tuple(e) for e in undirected_edges_of(dataset)],
                      undirected=False)
    run_or_timeout(
        benchmark,
        lambda: engine.query(pagerank_program(ITERATIONS)).to_dict())
