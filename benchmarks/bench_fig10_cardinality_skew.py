"""Figure 10: uint algorithms vs cardinality ratio (the 32:1 crossover).

Fixed 1M range, one set pinned at 64 values, the other swept upward.
Paper shape: shuffling/BMiss win while cardinalities are similar;
galloping takes over past the ~32:1 ratio (it alone satisfies the min
property), by >5x at extreme skew — exactly the dispatch rule of
Algorithm 2.
"""

import pytest

from repro.graphs import synthetic_set
from repro.sets import OpCounter, UINT_ALGORITHMS, UintSet, intersect

RANGE = 1_000_000
SMALL = 64
RATIOS = (1, 8, 32, 256, 2048)


def pair(ratio):
    a = UintSet(synthetic_set(SMALL, RANGE, seed=5))
    b = UintSet(synthetic_set(SMALL * ratio, RANGE, seed=6))
    return a, b


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("algorithm", UINT_ALGORITHMS)
def test_algorithms_by_ratio(benchmark, ratio, algorithm):
    benchmark.group = "fig10:ratio=%d" % ratio
    a, b = pair(ratio)
    benchmark.extra_info["model_ops"] = model_ops(ratio, algorithm)
    benchmark.pedantic(
        lambda: intersect(a, b, OpCounter(), algorithm=algorithm),
        rounds=3, iterations=1, warmup_rounds=1)


def model_ops(ratio, algorithm):
    a, b = pair(ratio)
    counter = OpCounter()
    intersect(a, b, counter, algorithm=algorithm)
    return counter.total_ops


def test_shape_crossover_at_32():
    assert model_ops(1, "shuffling") < model_ops(1, "simd_galloping")
    assert model_ops(8, "shuffling") < model_ops(8, "simd_galloping")
    assert model_ops(256, "simd_galloping") < model_ops(256, "shuffling")
    assert model_ops(2048, "simd_galloping") * 5 \
        < model_ops(2048, "shuffling")


def test_shape_hybrid_tracks_the_winner():
    """Adaptive dispatch must match the better algorithm at both ends."""
    for ratio in (1, 2048):
        a, b = pair(ratio)
        counter = OpCounter()
        intersect(a, b, counter)  # adaptive
        adaptive = counter.total_ops
        best = min(model_ops(ratio, "shuffling"),
                   model_ops(ratio, "simd_galloping"))
        assert adaptive <= best * 1.01
